/**
 * @file
 * Tests of the se::runtime layer: thread pool, content hashing, the
 * decomposition cache, the parallel compression pipeline (bit-identical
 * to the serial path), and the batched simulation driver.
 */

#include <gtest/gtest.h>

#include <atomic>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <memory>
#include <stdexcept>
#include <string>
#include <utility>
#include <vector>

#include "accel/annotate.hh"
#include "accel/baselines.hh"
#include "accel/smartexchange_accel.hh"
#include "base/hash.hh"
#include "base/random.hh"
#include "base/thread_pool.hh"
#include "runtime/options.hh"
#include "runtime/pipeline.hh"
#include "runtime/sim_driver.hh"

namespace se {
namespace {

// -------------------------------------------- RuntimeOptions::fromEnv

/** RAII env var that restores the previous value on scope exit. */
class ScopedEnv
{
  public:
    ScopedEnv(const char *name, const char *value) : name_(name)
    {
        if (const char *prev = std::getenv(name))
            prev_ = prev;
        had_ = std::getenv(name) != nullptr;
        ::setenv(name, value, 1);
    }
    ~ScopedEnv()
    {
        if (had_)
            ::setenv(name_.c_str(), prev_.c_str(), 1);
        else
            ::unsetenv(name_.c_str());
    }

  private:
    std::string name_, prev_;
    bool had_ = false;
};

TEST(RuntimeOptions, FromEnvParsesValidKnobs)
{
    ScopedEnv t("SE_THREADS", "3");
    ScopedEnv q("SE_SERVE_QUEUE_CAP", "128");
    ScopedEnv d("SE_SERVE_DEADLINE_MS", "2.5");
    ScopedEnv w("SE_SERVE_WEIGHT_SOURCE", "ce");
    ScopedEnv f("SE_MODEL_FORMAT", "2");
    ScopedEnv s("SE_STREAM_LOADER", "eager");
    const auto ro = runtime::RuntimeOptions::fromEnv();
    EXPECT_EQ(ro.threads, 3);
    EXPECT_EQ(ro.serveQueueCap, 128u);
    EXPECT_DOUBLE_EQ(ro.serveDeadlineMs, 2.5);
    EXPECT_EQ(ro.serveWeightSource,
              runtime::ServeWeightSource::CeDirect);
    EXPECT_EQ(ro.modelFormat, 2);
    EXPECT_TRUE(ro.streamEager);
}

TEST(RuntimeOptions, FromEnvParsesStreamingKnobs)
{
    ScopedEnv f("SE_MODEL_FORMAT", "4");
    ScopedEnv s("SE_STREAM_LOADER", "mmap");
    const auto ro = runtime::RuntimeOptions::fromEnv();
    EXPECT_EQ(ro.modelFormat, 4);
    EXPECT_FALSE(ro.streamEager);
}

TEST(RuntimeOptions, FromEnvParsesPipelineKnobs)
{
    {
        ScopedEnv p("SE_PIPELINE", "on");
        ScopedEnv d("SE_PREFETCH_DEPTH", "3");
        const auto ro = runtime::RuntimeOptions::fromEnv();
        EXPECT_TRUE(ro.servePipeline);
        EXPECT_EQ(ro.prefetchDepth, 3u);
    }
    {
        ScopedEnv p("SE_PIPELINE", "off");
        ScopedEnv d("SE_PREFETCH_DEPTH", "0");
        const auto ro = runtime::RuntimeOptions::fromEnv();
        EXPECT_FALSE(ro.servePipeline);
        EXPECT_EQ(ro.prefetchDepth, 0u);
    }
}

TEST(RuntimeOptions, FromEnvRejectsMalformedValues)
{
    // Regression: these used to be atoi/atof'd — SE_THREADS=four
    // silently selected the legacy serial path (0) instead of
    // failing. Every SE_* knob now rejects unrecognized values.
    const std::vector<std::pair<const char *, const char *>> bad{
        {"SE_THREADS", "four"},
        {"SE_THREADS", "4x"},
        {"SE_THREADS", ""},
        {"SE_THREADS", "4294967296"},  // would wrap to 0 (serial)
        {"SE_SERVE_QUEUE_CAP", "many"},
        {"SE_SERVE_QUEUE_CAP", "-1"},
        {"SE_SERVE_DEADLINE_MS", "fast"},
        {"SE_SERVE_DEADLINE_MS", "1.5ms"},
        {"SE_SERVE_DEADLINE_MS", "nan"},
        {"SE_SERVE_WEIGHT_SOURCE", "quantized"},
        {"SE_MODEL_FORMAT", "1"},
        {"SE_MODEL_FORMAT", "5"},
        {"SE_MODEL_FORMAT", "v3"},
        {"SE_STREAM_LOADER", "lazy"},
        {"SE_STREAM_LOADER", "MMAP"},  // case-sensitive
        {"SE_STREAM_LOADER", ""},
        {"SE_KERNEL_ISA", "avx512"},
        {"SE_KERNEL_ISA", "fast"},
        {"SE_KERNEL_ISA", "AVX2"},  // case-sensitive like the others
        {"SE_PIPELINE", "1"},
        {"SE_PIPELINE", "true"},
        {"SE_PIPELINE", "ON"},  // case-sensitive like the others
        {"SE_PIPELINE", ""},
        {"SE_PREFETCH_DEPTH", "-1"},
        {"SE_PREFETCH_DEPTH", "two"},
        {"SE_PREFETCH_DEPTH", "2x"},
        {"SE_PREFETCH_DEPTH", ""},
    };
    for (const auto &[name, value] : bad) {
        ScopedEnv e(name, value);
        EXPECT_THROW(runtime::RuntimeOptions::fromEnv(),
                     std::invalid_argument)
            << name << "=" << value;
    }
}

TEST(RuntimeOptions, FromEnvKernelIsaForcedSelection)
{
    // SE_KERNEL_ISA=scalar is valid on every build; applyKernelConfig
    // must install it process-wide, and the default (unset) env must
    // leave the field empty so apply keeps the startup selection.
    const kernels::KernelIsa before = kernels::activeIsa();
    {
        ScopedEnv isa("SE_KERNEL_ISA", "scalar");
        const auto ro = runtime::RuntimeOptions::fromEnv();
        ASSERT_TRUE(ro.kernelIsa.has_value());
        EXPECT_EQ(*ro.kernelIsa, kernels::KernelIsa::Scalar);
        ro.applyKernelConfig();
        EXPECT_EQ(kernels::activeIsa(), kernels::KernelIsa::Scalar);
    }
    kernels::setActiveIsa(before);
    {
        ScopedEnv isa("SE_KERNEL_ISA", "auto");
        const auto ro = runtime::RuntimeOptions::fromEnv();
        ASSERT_TRUE(ro.kernelIsa.has_value());
        EXPECT_EQ(*ro.kernelIsa, kernels::detectBestIsa());
    }
    {
        ScopedEnv isa("SE_KERNEL_ISA", "unset-sentinel");
        ::unsetenv("SE_KERNEL_ISA");
        const auto ro = runtime::RuntimeOptions::fromEnv();
        EXPECT_FALSE(ro.kernelIsa.has_value());
        ro.applyKernelConfig();  // no-op on the ISA
        EXPECT_EQ(kernels::activeIsa(), before);
    }
}

TEST(RuntimeOptions, FromEnvDefaultsWithoutKnobs)
{
    // Shield against SE_* leaking in from the harness environment.
    std::vector<std::unique_ptr<ScopedEnv>> clear;
    for (const char *name :
         {"SE_SERVE_QUEUE_CAP", "SE_SERVE_DEADLINE_MS",
          "SE_SERVE_WEIGHT_SOURCE", "SE_MODEL_FORMAT",
          "SE_STREAM_LOADER", "SE_PIPELINE", "SE_PREFETCH_DEPTH"}) {
        clear.push_back(std::make_unique<ScopedEnv>(name, "0"));
        ::unsetenv(name);  // ScopedEnv restores any prior value
    }
    const auto ro = runtime::RuntimeOptions::fromEnv();
    EXPECT_EQ(ro.modelFormat, 3);
    EXPECT_FALSE(ro.streamEager);
    EXPECT_EQ(ro.serveWeightSource,
              runtime::ServeWeightSource::Dense);
    EXPECT_EQ(ro.serveQueueCap, 0u);
    EXPECT_DOUBLE_EQ(ro.serveDeadlineMs, 0.0);
    EXPECT_FALSE(ro.servePipeline);
    EXPECT_EQ(ro.prefetchDepth, 0u);
}

// ------------------------------------------------------------ ThreadPool

TEST(ThreadPool, SubmitReturnsResults)
{
    ThreadPool pool(3);
    EXPECT_EQ(pool.threadCount(), 3);
    auto f = pool.submit([] { return 6 * 7; });
    EXPECT_EQ(f.get(), 42);
}

TEST(ThreadPool, ParallelForCoversEveryIndexExactlyOnce)
{
    ThreadPool pool(4);
    const int64_t n = 1000;
    std::vector<std::atomic<int>> hits(n);
    pool.parallelFor(n, [&](int64_t i) { hits[(size_t)i]++; });
    for (int64_t i = 0; i < n; ++i)
        EXPECT_EQ(hits[(size_t)i].load(), 1) << "index " << i;
}

TEST(ThreadPool, ParallelForPropagatesExceptions)
{
    ThreadPool pool(2);
    EXPECT_THROW(pool.parallelFor(8,
                                  [](int64_t i) {
                                      if (i == 5)
                                          throw std::runtime_error("x");
                                  }),
                 std::runtime_error);
}

TEST(ThreadPool, SingleWorkerRunsInline)
{
    ThreadPool pool(1);
    int64_t sum = 0;  // no atomics needed: inline execution
    pool.parallelFor(100, [&](int64_t i) { sum += i; });
    EXPECT_EQ(sum, 4950);
}

// ------------------------------------------------------------------ Hash

TEST(Hash, TensorHashIsContentAndShapeSensitive)
{
    Rng rng(11);
    Tensor a = randn({6, 4}, rng, 0.0f, 1.0f);
    Tensor b = a;
    EXPECT_EQ(hashTensor(a), hashTensor(b));

    b[0] += 1.0f;
    EXPECT_NE(hashTensor(a), hashTensor(b));

    // Same bytes, different shape.
    Tensor c = a.reshaped({4, 6});
    EXPECT_NE(hashTensor(a), hashTensor(c));
}

TEST(Hash, DecompKeySeesOptionChanges)
{
    Rng rng(12);
    Tensor w = randn({8, 4}, rng, 0.0f, 0.1f);
    core::SeOptions a, b;
    b.vectorThreshold = a.vectorThreshold * 2.0;
    EXPECT_NE(runtime::decompKey(w, a), runtime::decompKey(w, b));
    EXPECT_EQ(runtime::decompKey(w, a), runtime::decompKey(w, a));
}

// ----------------------------------------------------------- DecompCache

TEST(DecompCache, HitMissCountersAndIdenticalResults)
{
    Rng rng(13);
    Tensor w = randn({16, 4}, rng, 0.0f, 0.1f);
    core::SeOptions opts;
    opts.vectorThreshold = 0.01;

    runtime::DecompCache cache(8);
    auto first = cache.getOrCompute(w, opts);
    EXPECT_EQ(cache.misses(), 1u);
    EXPECT_EQ(cache.hits(), 0u);
    EXPECT_EQ(cache.size(), 1u);

    auto second = cache.getOrCompute(w, opts);
    EXPECT_EQ(cache.hits(), 1u);
    EXPECT_EQ(cache.size(), 1u);

    // The cached copy is bit-identical to the computed one.
    ASSERT_EQ(first.ce.size(), second.ce.size());
    EXPECT_EQ(std::memcmp(first.ce.data(), second.ce.data(),
                          (size_t)first.ce.size() * sizeof(float)),
              0);
    EXPECT_EQ(std::memcmp(first.basis.data(), second.basis.data(),
                          (size_t)first.basis.size() * sizeof(float)),
              0);
    EXPECT_EQ(first.reconRelError, second.reconRelError);
}

TEST(DecompCache, EvictsLeastRecentlyUsed)
{
    Rng rng(14);
    core::SeOptions opts;
    runtime::DecompCache cache(2);

    Tensor w0 = randn({8, 4}, rng, 0.0f, 0.1f);
    Tensor w1 = randn({8, 4}, rng, 0.0f, 0.1f);
    Tensor w2 = randn({8, 4}, rng, 0.0f, 0.1f);

    cache.getOrCompute(w0, opts);  // {w0}
    cache.getOrCompute(w1, opts);  // {w1, w0}
    cache.getOrCompute(w0, opts);  // hit -> {w0, w1}
    EXPECT_EQ(cache.hits(), 1u);
    cache.getOrCompute(w2, opts);  // evicts w1 -> {w2, w0}
    EXPECT_EQ(cache.size(), 2u);

    cache.getOrCompute(w0, opts);  // still cached
    EXPECT_EQ(cache.hits(), 2u);
    cache.getOrCompute(w1, opts);  // was evicted: a miss
    EXPECT_EQ(cache.misses(), 4u);
}

TEST(DecompCache, ZeroCapacityDisables)
{
    Rng rng(15);
    Tensor w = randn({8, 4}, rng, 0.0f, 0.1f);
    runtime::DecompCache cache(0);
    cache.getOrCompute(w, core::SeOptions{});
    cache.getOrCompute(w, core::SeOptions{});
    EXPECT_EQ(cache.size(), 0u);
    EXPECT_EQ(cache.hits(), 0u);
}

// ------------------------------------------- persistent DecompCache

namespace fs = std::filesystem;

/** Fresh spill directory, removed again on scope exit. */
struct SpillDir
{
    explicit SpillDir(const std::string &name)
        : path((fs::temp_directory_path() / name).string())
    {
        fs::remove_all(path);
    }
    ~SpillDir() { fs::remove_all(path); }
    std::string path;
};

TEST(PersistentDecompCache, SurvivesARestart)
{
    SpillDir dir("se_runtime_spill_restart");
    Rng rng(16);
    Tensor w = randn({16, 4}, rng, 0.0f, 0.1f);
    core::SeOptions opts;
    opts.vectorThreshold = 0.01;

    core::SeMatrix first;
    {
        runtime::DecompCache cache(
            runtime::DecompCacheOptions{8, dir.path});
        first = cache.getOrCompute(w, opts);
        EXPECT_EQ(cache.spills(), 1u);
        EXPECT_EQ(cache.spillFailures(), 0u);
    }
    // "Restart": a fresh instance (empty memory tier) finds the
    // entry on disk, bit-identical to the computed one.
    runtime::DecompCache cache(
        runtime::DecompCacheOptions{8, dir.path});
    EXPECT_EQ(cache.recoverScan(), 1u);
    const auto second = cache.getOrCompute(w, opts);
    EXPECT_EQ(cache.diskHits(), 1u);
    EXPECT_EQ(cache.misses(), 0u);
    ASSERT_EQ(first.ce.size(), second.ce.size());
    EXPECT_EQ(std::memcmp(first.ce.data(), second.ce.data(),
                          (size_t)first.ce.size() * sizeof(float)),
              0);
    EXPECT_EQ(std::memcmp(first.basis.data(), second.basis.data(),
                          (size_t)first.basis.size() * sizeof(float)),
              0);
    // The disk hit was promoted: the next lookup is a memory hit.
    cache.getOrCompute(w, opts);
    EXPECT_EQ(cache.hits(), 1u);
}

TEST(PersistentDecompCache, MemoryEvictionKeepsTheDiskCopy)
{
    SpillDir dir("se_runtime_spill_evict");
    Rng rng(17);
    core::SeOptions opts;
    runtime::DecompCache cache(
        runtime::DecompCacheOptions{1, dir.path});
    Tensor w0 = randn({8, 4}, rng, 0.0f, 0.1f);
    Tensor w1 = randn({8, 4}, rng, 0.0f, 0.1f);
    cache.getOrCompute(w0, opts);
    cache.getOrCompute(w1, opts);  // evicts w0 from memory
    EXPECT_EQ(cache.size(), 1u);
    cache.getOrCompute(w0, opts);  // …but the spill tier still has it
    EXPECT_EQ(cache.diskHits(), 1u);
    EXPECT_EQ(cache.misses(), 2u);
}

TEST(PersistentDecompCache, CorruptAndTruncatedEntriesAreDropped)
{
    SpillDir dir("se_runtime_spill_corrupt");
    Rng rng(18);
    core::SeOptions opts;
    Tensor w0 = randn({8, 4}, rng, 0.0f, 0.1f);
    Tensor w1 = randn({8, 4}, rng, 0.0f, 0.1f);
    {
        runtime::DecompCache cache(
            runtime::DecompCacheOptions{8, dir.path});
        cache.getOrCompute(w0, opts);
        cache.getOrCompute(w1, opts);
    }
    // Flip one payload byte in the first entry, truncate the second.
    std::vector<std::string> files;
    for (const auto &e : fs::directory_iterator(dir.path))
        files.push_back(e.path().string());
    ASSERT_EQ(files.size(), 2u);
    {
        std::fstream f(files[0],
                       std::ios::in | std::ios::out | std::ios::binary);
        f.seekp(30);
        char b = 0;
        f.seekg(30);
        f.get(b);
        b = (char)(b ^ 0x10);
        f.seekp(30);
        f.put(b);
    }
    fs::resize_file(files[1], 10);

    runtime::DecompCache cache(
        runtime::DecompCacheOptions{8, dir.path});
    // The recovery scan at construction already swept both.
    EXPECT_EQ(cache.corruptDropped(), 2u);
    EXPECT_EQ(cache.recoverScan(), 0u);
    for (const auto &e : fs::directory_iterator(dir.path))
        FAIL() << "stale file survived recovery: " << e.path();
    // Both lookups are ordinary misses that recompute and re-spill.
    core::SeMatrix out;
    EXPECT_FALSE(cache.lookup(runtime::decompKey(w0, opts), out));
    cache.getOrCompute(w0, opts);
    EXPECT_EQ(cache.spills(), 1u);
}

TEST(PersistentDecompCache, ForeignAndMisnamedFilesAreHandled)
{
    SpillDir dir("se_runtime_spill_foreign");
    Rng rng(19);
    core::SeOptions opts;
    Tensor w = randn({8, 4}, rng, 0.0f, 0.1f);
    {
        runtime::DecompCache cache(
            runtime::DecompCacheOptions{8, dir.path});
        cache.getOrCompute(w, opts);
    }
    // A foreign file is left alone; a valid entry renamed under the
    // wrong key must NOT be served (key binding) and is dropped.
    std::string entry;
    for (const auto &e : fs::directory_iterator(dir.path))
        entry = e.path().string();
    {
        std::ofstream f((fs::path(dir.path) / "notes.txt").string());
        f << "not a cache entry";
    }
    const std::string renamed =
        (fs::path(dir.path) / "0123456789abcdef.sedc").string();
    fs::copy_file(entry, renamed);

    runtime::DecompCache cache(
        runtime::DecompCacheOptions{8, dir.path});
    EXPECT_EQ(cache.recoverScan(), 1u);  // the real entry survives
    EXPECT_FALSE(fs::exists(renamed));
    EXPECT_TRUE(
        fs::exists((fs::path(dir.path) / "notes.txt").string()));
    core::SeMatrix out;
    EXPECT_TRUE(cache.lookup(runtime::decompKey(w, opts), out));
    EXPECT_EQ(cache.diskHits(), 1u);
}

TEST(PersistentDecompCache, ClearKeepsSpillPurgeWipesIt)
{
    SpillDir dir("se_runtime_spill_purge");
    Rng rng(20);
    core::SeOptions opts;
    Tensor w = randn({8, 4}, rng, 0.0f, 0.1f);
    runtime::DecompCache cache(
        runtime::DecompCacheOptions{8, dir.path});
    EXPECT_TRUE(cache.persistent());
    cache.getOrCompute(w, opts);
    cache.clear();
    EXPECT_EQ(cache.size(), 0u);
    EXPECT_EQ(cache.recoverScan(), 1u);  // disk tier survived clear()
    cache.purgeSpill();
    EXPECT_EQ(cache.recoverScan(), 0u);
}

// --------------------------------------------------- CompressionPipeline

/** A small CNN exercising all three reshape rules + BN pruning. */
std::unique_ptr<nn::Sequential>
makeCnn(uint64_t seed)
{
    Rng rng(seed);
    auto net = std::make_unique<nn::Sequential>();
    net->add<nn::Conv2d>(3, 16, 3, 1, 1, 1, rng, false);
    auto *bn = net->add<nn::BatchNorm2d>(16);
    net->add<nn::Conv2d>(16, 24, 1, 1, 0, 1, rng, false);  // 1x1 rule
    net->add<nn::Conv2d>(24, 8, 3, 1, 1, 1, rng, false);
    net->add<nn::Linear>(32, 10, rng, false);              // FC rule
    // Make one BN gamma small enough to trip channel pruning.
    bn->gammaTensor()[3] = 1e-4f;
    return net;
}

/** Bit-exact weight comparison between two networks. */
void
expectIdenticalWeights(nn::Sequential &a, nn::Sequential &b)
{
    std::vector<const Tensor *> wa, wb;
    a.visit([&](nn::Layer &l) {
        if (auto *c = dynamic_cast<nn::Conv2d *>(&l))
            wa.push_back(&c->weightTensor());
        else if (auto *f = dynamic_cast<nn::Linear *>(&l))
            wa.push_back(&f->weightTensor());
    });
    b.visit([&](nn::Layer &l) {
        if (auto *c = dynamic_cast<nn::Conv2d *>(&l))
            wb.push_back(&c->weightTensor());
        else if (auto *f = dynamic_cast<nn::Linear *>(&l))
            wb.push_back(&f->weightTensor());
    });
    ASSERT_EQ(wa.size(), wb.size());
    for (size_t i = 0; i < wa.size(); ++i) {
        ASSERT_EQ(wa[i]->size(), wb[i]->size());
        EXPECT_EQ(std::memcmp(wa[i]->data(), wb[i]->data(),
                              (size_t)wa[i]->size() * sizeof(float)),
                  0)
            << "weight tensor " << i << " differs";
    }
}

void
expectIdenticalReports(const core::CompressionReport &a,
                       const core::CompressionReport &b)
{
    ASSERT_EQ(a.layers.size(), b.layers.size());
    for (size_t i = 0; i < a.layers.size(); ++i) {
        const auto &x = a.layers[i], &y = b.layers[i];
        EXPECT_EQ(x.name, y.name);
        EXPECT_EQ(x.weightCount, y.weightCount);
        EXPECT_EQ(x.originalBits, y.originalBits);
        EXPECT_EQ(x.ceBits, y.ceBits);
        EXPECT_EQ(x.basisBits, y.basisBits);
        EXPECT_EQ(x.vectorSparsity, y.vectorSparsity);
        EXPECT_EQ(x.elementSparsity, y.elementSparsity);
        EXPECT_EQ(x.channelSparsity, y.channelSparsity);
        EXPECT_EQ(x.reconRelError, y.reconRelError);
        EXPECT_EQ(x.decomposed, y.decomposed);
        EXPECT_EQ(x.pieces, y.pieces);
    }
}

TEST(CompressionPipeline, ParallelMatchesSerialBitForBit)
{
    core::SeOptions se_opts;
    se_opts.vectorThreshold = 0.01;
    core::ApplyOptions apply_opts;
    apply_opts.channelGammaThreshold = 0.01;
    apply_opts.maxSliceRows = 24;  // exercise slicing too

    auto serial_net = makeCnn(77);
    auto report_serial =
        core::applySmartExchange(*serial_net, se_opts, apply_opts);

    runtime::RuntimeOptions ro;
    ro.threads = 4;
    runtime::CompressionPipeline pipe(ro);
    auto parallel_net = makeCnn(77);
    auto report_parallel =
        pipe.run(*parallel_net, se_opts, apply_opts);

    EXPECT_EQ(pipe.stats().threadsUsed, 4);
    EXPECT_GT(pipe.stats().units, 0u);
    expectIdenticalWeights(*serial_net, *parallel_net);
    expectIdenticalReports(report_serial, report_parallel);
}

TEST(CompressionPipeline, ZeroThreadsIsTheLegacySerialPath)
{
    core::SeOptions se_opts;
    se_opts.vectorThreshold = 0.01;

    auto serial_net = makeCnn(78);
    auto report_serial = core::applySmartExchange(
        *serial_net, se_opts, core::ApplyOptions{});

    runtime::CompressionPipeline pipe;  // threads = 0
    auto fallback_net = makeCnn(78);
    auto report_fallback =
        pipe.run(*fallback_net, se_opts, core::ApplyOptions{});

    expectIdenticalWeights(*serial_net, *fallback_net);
    expectIdenticalReports(report_serial, report_fallback);
}

TEST(CompressionPipeline, CacheAnswersRepeatedSweeps)
{
    core::SeOptions se_opts;
    se_opts.vectorThreshold = 0.01;

    runtime::RuntimeOptions ro;
    ro.threads = 2;
    ro.cacheCapacity = 4096;
    runtime::CompressionPipeline pipe(ro);

    auto net1 = makeCnn(79);
    auto report1 = pipe.run(*net1, se_opts, core::ApplyOptions{});
    EXPECT_EQ(pipe.stats().cacheHits, 0u);
    const size_t units = pipe.stats().units;

    // A fresh, identical network: every unit should hit the cache.
    auto net2 = makeCnn(79);
    auto report2 = pipe.run(*net2, se_opts, core::ApplyOptions{});
    EXPECT_EQ(pipe.stats().units, units);
    EXPECT_EQ(pipe.stats().cacheHits, units);

    expectIdenticalWeights(*net1, *net2);
    expectIdenticalReports(report1, report2);
}

// -------------------------------------------------------------- SimDriver

TEST(SimDriver, LayerBatchEqualsSerialAccumulation)
{
    accel::SmartExchangeAccel acc;
    auto w = accel::annotatedWorkload(models::ModelId::MobileNetV2);

    sim::RunStats serial;
    for (const auto &l : w.layers)
        serial += acc.runLayer(l);

    runtime::RuntimeOptions ro;
    ro.threads = 4;
    runtime::SimDriver driver(ro);
    auto batched = driver.runLayers(acc, w.layers);

    EXPECT_EQ(batched.cycles, serial.cycles);
    EXPECT_EQ(batched.dramTrafficBits, serial.dramTrafficBits);
    for (size_t c = 0; c < sim::kNumComponents; ++c)
        EXPECT_EQ(batched.energyPj[c], serial.energyPj[c])
            << sim::componentName((sim::Component)c);
}

TEST(SimDriver, SweepIsBitIdenticalAcrossThreadCounts)
{
    auto make_accs = [] {
        std::vector<accel::AcceleratorPtr> accs;
        accs.push_back(std::make_unique<accel::DianNao>());
        accs.push_back(std::make_unique<accel::Scnn>());
        accs.push_back(std::make_unique<accel::SmartExchangeAccel>());
        return accs;
    };
    auto accs = make_accs();
    std::vector<sim::Workload> workloads;
    workloads.push_back(
        accel::annotatedWorkload(models::ModelId::VGG19));
    workloads.push_back(
        accel::annotatedWorkload(models::ModelId::ResNet164));
    workloads.push_back(
        accel::annotatedWorkload(models::ModelId::MobileNetV2));

    std::vector<runtime::SimResults> all;
    for (int threads : {0, 1, 8}) {
        runtime::RuntimeOptions ro;
        ro.threads = threads;
        runtime::SimDriver driver(ro);
        all.push_back(driver.sweep(accs, workloads, true));
    }
    for (size_t v = 1; v < all.size(); ++v) {
        ASSERT_EQ(all[v].size(), all[0].size());
        for (size_t ai = 0; ai < all[0].size(); ++ai)
            for (size_t wi = 0; wi < all[0][ai].size(); ++wi) {
                const auto &a = all[0][ai][wi];
                const auto &b = all[v][ai][wi];
                ASSERT_EQ(a.run, b.run);
                EXPECT_EQ(a.stats.cycles, b.stats.cycles);
                EXPECT_EQ(a.stats.dramTrafficBits,
                          b.stats.dramTrafficBits);
                for (size_t c = 0; c < sim::kNumComponents; ++c)
                    EXPECT_EQ(a.stats.energyPj[c],
                              b.stats.energyPj[c])
                        << "variant " << v << " cell (" << ai << ","
                        << wi << ") component "
                        << sim::componentName((sim::Component)c);
            }
    }
}

TEST(SimDriver, SweepMatchesRunNetworkAndHonorsSkips)
{
    std::vector<accel::AcceleratorPtr> accs;
    accs.push_back(std::make_unique<accel::DianNao>());
    accs.push_back(std::make_unique<accel::SmartExchangeAccel>());

    std::vector<sim::Workload> workloads;
    workloads.push_back(
        accel::annotatedWorkload(models::ModelId::VGG19));
    workloads.push_back(
        accel::annotatedWorkload(models::ModelId::MobileNetV2));

    runtime::RuntimeOptions ro;
    ro.threads = 3;
    runtime::SimDriver driver(ro);
    auto cells = driver.sweep(accs, workloads, /*include_fc=*/false,
                              [](size_t ai, size_t wi) {
                                  return ai == 0 && wi == 1;  // skip
                              });

    ASSERT_EQ(cells.size(), 2u);
    ASSERT_EQ(cells[0].size(), 2u);
    EXPECT_FALSE(cells[0][1].run);

    for (size_t ai = 0; ai < accs.size(); ++ai)
        for (size_t wi = 0; wi < workloads.size(); ++wi) {
            if (ai == 0 && wi == 1)
                continue;
            ASSERT_TRUE(cells[ai][wi].run);
            auto ref = accs[ai]->runNetwork(workloads[wi], false);
            EXPECT_EQ(cells[ai][wi].stats.cycles, ref.cycles);
            EXPECT_EQ(cells[ai][wi].stats.totalEnergyPj(),
                      ref.totalEnergyPj());
        }
}

} // namespace
} // namespace se
