/**
 * @file
 * Negative-compile case: reading an SE_GUARDED_BY member without
 * holding its mutex. Under Clang -Werror=thread-safety this TU must
 * FAIL to compile (the harness errors out if it succeeds); under GCC
 * the annotations are no-ops and it must compile cleanly, proving the
 * Clang failure comes from the analysis, not from a syntax error.
 */

#include "base/mutex.hh"

namespace {

struct Counter
{
    se::base::Mutex mu;
    int n SE_GUARDED_BY(mu) = 0;

    int
    read()
    {
        return n;  // BAD: guarded read, no lock held
    }
};

} // namespace

int
main()
{
    Counter c;
    return c.read();
}
