/**
 * @file
 * Positive control for the negative-compile harness: the same guarded
 * member and SE_REQUIRES callee as the failing cases, accessed
 * correctly through base::LockGuard. Must compile cleanly under EVERY
 * compiler — if this one breaks, the harness is miswired (bad include
 * path, broken flags) and the negative results mean nothing.
 */

#include "base/mutex.hh"

namespace {

struct Counter
{
    se::base::Mutex mu;
    int n SE_GUARDED_BY(mu) = 0;

    void
    bumpLocked() SE_REQUIRES(mu)
    {
        ++n;
    }

    int
    bump()
    {
        se::base::LockGuard lk(mu);
        bumpLocked();
        return n;
    }
};

} // namespace

int
main()
{
    Counter c;
    return c.bump();
}
