/**
 * @file
 * Negative-compile case: calling an SE_REQUIRES method without
 * holding the capability it names. Under Clang -Werror=thread-safety
 * this TU must FAIL to compile; under GCC it must compile cleanly
 * (see guarded_by_off_lock.cc for the rationale).
 */

#include "base/mutex.hh"

namespace {

struct Counter
{
    se::base::Mutex mu;
    int n SE_GUARDED_BY(mu) = 0;

    void
    bumpLocked() SE_REQUIRES(mu)
    {
        ++n;
    }

    void
    bump()
    {
        bumpLocked();  // BAD: caller does not hold mu
    }
};

} // namespace

int
main()
{
    Counter c;
    c.bump();
    return 0;
}
