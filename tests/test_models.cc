/**
 * @file
 * Tests for the model zoo: live Sim-scale builders produce runnable,
 * trainable networks; paper-scale shape generators match the published
 * layer geometry (parameter counts, MACs, layer counts).
 */

#include <gtest/gtest.h>

#include <set>

#include "base/random.hh"
#include "models/zoo.hh"

namespace se {
namespace {

using models::ModelId;

class BuildSweep : public ::testing::TestWithParam<ModelId>
{
};

TEST_P(BuildSweep, SimModelRunsForwardBackward)
{
    models::SimConfig cfg;
    cfg.inHeight = 16;
    cfg.inWidth = 16;
    auto net = models::buildSim(GetParam(), cfg);
    Rng rng(1);
    Tensor x = randn({2, cfg.inChannels, cfg.inHeight, cfg.inWidth},
                     rng);
    Tensor y = net->forward(x, /*train=*/true);
    if (GetParam() == ModelId::DeepLabV3Plus) {
        EXPECT_EQ(y.ndim(), 4);
        EXPECT_EQ(y.dim(1), cfg.numClasses);
        EXPECT_EQ(y.dim(2), cfg.inHeight);
    } else {
        EXPECT_EQ(y.ndim(), 2);
        EXPECT_EQ(y.dim(1), cfg.numClasses);
    }
    // Backward must run without shape errors.
    Tensor gy(y.shape(), 1e-3f);
    net->backward(gy);
    EXPECT_FALSE(net->params().empty());
}

INSTANTIATE_TEST_SUITE_P(
    AllModels, BuildSweep,
    ::testing::Values(ModelId::VGG11, ModelId::VGG19, ModelId::ResNet50,
                      ModelId::ResNet164, ModelId::MobileNetV2,
                      ModelId::EfficientNetB0, ModelId::DeepLabV3Plus,
                      ModelId::MLP1, ModelId::MLP2));

TEST(PaperShapes, Vgg11ParameterCount)
{
    auto w = models::paperShapes(ModelId::VGG11);
    // VGG11: ~132.9M params total; conv part ~9.2M.
    const double mparams = (double)w.totalWeights() / 1e6;
    EXPECT_NEAR(mparams, 132.9, 3.0);
    // FP32 storage ~531 MB? Paper Table II lists 845.75 MB for their
    // VGG11 variant; our geometry is the canonical torchvision one.
    EXPECT_EQ(w.layers.size(), 11u);
}

TEST(PaperShapes, ResNet50ParameterAndMacCount)
{
    auto w = models::paperShapes(ModelId::ResNet50);
    const double mparams = (double)w.totalWeights() / 1e6;
    const double gmacs = (double)w.totalMacs() / 1e9;
    // Canonical ResNet50: ~25.5M params, ~4.1 GMACs.
    EXPECT_NEAR(mparams, 25.5, 1.5);
    EXPECT_NEAR(gmacs, 4.1, 0.5);
}

TEST(PaperShapes, MobileNetV2ParameterAndMacCount)
{
    auto w = models::paperShapes(ModelId::MobileNetV2);
    const double mparams = (double)w.totalWeights() / 1e6;
    const double gmacs = (double)w.totalMacs() / 1e9;
    // Canonical MBV2: ~3.4M params, ~0.3 GMACs.
    EXPECT_NEAR(mparams, 3.4, 0.4);
    EXPECT_NEAR(gmacs, 0.31, 0.08);
}

TEST(PaperShapes, EfficientNetB0HasSqueezeExciteLayers)
{
    auto w = models::paperShapes(ModelId::EfficientNetB0);
    int se_layers = 0;
    for (const auto &l : w.layers)
        se_layers += l.kind == sim::LayerKind::SqueezeExcite;
    EXPECT_EQ(se_layers, 16);  // one per MBConv block
    const double mparams = (double)w.totalWeights() / 1e6;
    EXPECT_NEAR(mparams, 5.3, 1.5);
}

TEST(PaperShapes, Vgg19CifarLayerCount)
{
    auto w = models::paperShapes(ModelId::VGG19);
    EXPECT_EQ(w.layers.size(), 17u);  // 16 convs + 1 FC
    const double mparams = (double)w.totalWeights() / 1e6;
    EXPECT_NEAR(mparams, 20.0, 1.0);  // VGG19 CIFAR ~20M
}

TEST(PaperShapes, ResNet164LayerStructure)
{
    auto w = models::paperShapes(ModelId::ResNet164);
    // conv1 + 54 bottlenecks x 3 convs + 3 projections + fc = 165.
    int convs = 0, fcs = 0;
    for (const auto &l : w.layers) {
        convs += l.kind == sim::LayerKind::Conv;
        fcs += l.kind == sim::LayerKind::FullyConnected;
    }
    EXPECT_EQ(fcs, 1);
    EXPECT_EQ(convs, 1 + 54 * 3 + 3);
    const double mparams = (double)w.totalWeights() / 1e6;
    EXPECT_NEAR(mparams, 1.7, 0.3);  // ResNet164 ~1.7M
}

TEST(PaperShapes, MobileNetHasDepthwiseLayers)
{
    auto w = models::paperShapes(ModelId::MobileNetV2);
    int dw = 0;
    for (const auto &l : w.layers)
        dw += l.kind == sim::LayerKind::DepthwiseConv;
    EXPECT_EQ(dw, 17);  // one per inverted residual block
}

TEST(PaperShapes, MlpSizes)
{
    auto m1 = models::paperShapes(ModelId::MLP1);
    auto m2 = models::paperShapes(ModelId::MLP2);
    // MLP-1: 784-1024-1024-1024-10 => ~2.9M weights (~11.6 MB FP32;
    // the paper's [40] variant lists 14.125 MB, presumably counting
    // extra parameters of its block-circulant formulation).
    EXPECT_NEAR((double)m1.totalWeights() * 4 / 1e6, 11.6, 0.5);
    // MLP-2: 784-300-100-10 => ~266K params (~1.07 MB FP32).
    EXPECT_NEAR((double)m2.totalWeights() * 4 / 1e6, 1.07, 0.1);
}

TEST(PaperShapes, DeepLabDominatedByBackbone)
{
    auto w = models::paperShapes(ModelId::DeepLabV3Plus);
    // Output-stride-16 geometry: last stage spatial size must equal
    // the ASPP input (360/16 x 480/16 rounded by the conv chain).
    const auto &aspp = w.layers[w.layers.size() - 10];
    EXPECT_EQ(aspp.c, 2048);
    EXPECT_GT(w.totalMacs(), (int64_t)40e9);  // segmentation is heavy
}

TEST(PaperShapes, OutputDimsConsistent)
{
    for (ModelId id : models::acceleratorBenchmarkModels()) {
        auto w = models::paperShapes(id);
        for (const auto &l : w.layers) {
            EXPECT_GT(l.outH(), 0) << w.name << " " << l.name;
            EXPECT_GT(l.outW(), 0) << w.name << " " << l.name;
            EXPECT_GT(l.macs(), 0) << w.name << " " << l.name;
        }
    }
}

TEST(Names, AllDistinct)
{
    std::set<std::string> names;
    for (ModelId id :
         {ModelId::VGG11, ModelId::VGG19, ModelId::ResNet50,
          ModelId::ResNet164, ModelId::MobileNetV2,
          ModelId::EfficientNetB0, ModelId::DeepLabV3Plus, ModelId::MLP1,
          ModelId::MLP2})
        names.insert(models::modelName(id));
    EXPECT_EQ(names.size(), 9u);
}

} // namespace
} // namespace se
