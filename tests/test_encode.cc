/**
 * @file
 * Tests for the sparse index encodings and the index-selector logic.
 */

#include <gtest/gtest.h>

#include "encode/encoding.hh"

namespace se {
namespace {

using encode::crsCost;
using encode::directBitmap;
using encode::indexOverhead;
using encode::runLengthEncode;
using encode::selectPairs;
using encode::vectorBitmap;

TEST(Bitmap, MarksNonZeros)
{
    auto b = directBitmap({0.0f, 1.0f, 0.0f, -2.0f});
    ASSERT_EQ(b.bits.size(), 4u);
    EXPECT_EQ(b.bits[0], 0);
    EXPECT_EQ(b.bits[1], 1);
    EXPECT_EQ(b.bits[3], 1);
    EXPECT_EQ(b.storageBits(), 4);
}

TEST(VectorBitmap, OneBitPerRow)
{
    Tensor m({3, 3});
    m.at(1, 2) = 5.0f;  // only row 1 non-zero
    auto b = vectorBitmap(m);
    ASSERT_EQ(b.bits.size(), 3u);
    EXPECT_EQ(b.bits[0], 0);
    EXPECT_EQ(b.bits[1], 1);
    EXPECT_EQ(b.bits[2], 0);
}

TEST(VectorBitmap, ReducesOverheadVsElementWise)
{
    // The Fig. 3 (b) comparison: 18 element indices vs 6 vector
    // indices for a 6x3 block.
    auto o = indexOverhead(6, 3);
    EXPECT_EQ(o.elementWiseBits, 18);
    EXPECT_EQ(o.vectorWiseBits, 6);
}

TEST(RunLength, EncodesRuns)
{
    int64_t padded = 0;
    auto rl = runLengthEncode({0, 0, 3.0f, 0, 5.0f, 7.0f}, 4, &padded);
    // Runs before each nnz: 2, 1, 0.
    ASSERT_EQ(rl.runs.size(), 3u);
    EXPECT_EQ(rl.runs[0], 2u);
    EXPECT_EQ(rl.runs[1], 1u);
    EXPECT_EQ(rl.runs[2], 0u);
    EXPECT_EQ(padded, 0);
    EXPECT_EQ(rl.storageBits(), 12);
}

TEST(RunLength, LongRunsEmitPadding)
{
    std::vector<float> v(20, 0.0f);
    v.push_back(1.0f);
    int64_t padded = 0;
    auto rl = runLengthEncode(v, 2, &padded);  // max run 3
    EXPECT_GT(padded, 0);
    // Total zeros represented: runs + padded entries each carry up to
    // max_run zeros; final nnz terminates.
    EXPECT_GE((int64_t)rl.runs.size(), padded + 1);
}

TEST(Crs, CountsMatchMatrix)
{
    Tensor m({4, 8});
    m.at(0, 1) = 1.0f;
    m.at(2, 7) = 2.0f;
    m.at(3, 0) = 3.0f;
    auto c = crsCost(m);
    EXPECT_EQ(c.nnz, 3);
    EXPECT_EQ(c.columnIndexBits, 3 * 3);  // log2(8) = 3 bits
    EXPECT_GT(c.rowPointerBits, 0);
    EXPECT_EQ(c.storageBits(8), 3 * 8 + 9 + c.rowPointerBits);
}

TEST(Crs, DenseMatrixCostsMoreThanBitmap)
{
    Tensor m({16, 16}, 1.0f);
    auto c = crsCost(m);
    // For dense data CRS indexing exceeds a 1-bit bitmap.
    EXPECT_GT(c.columnIndexBits, (int64_t)(16 * 16));
}

TEST(IndexSelector, IntersectsBitmaps)
{
    encode::Bitmap w{{1, 0, 1, 1, 0}};
    encode::Bitmap a{{1, 1, 0, 1, 0}};
    auto pairs = selectPairs(w, a);
    ASSERT_EQ(pairs.size(), 2u);
    EXPECT_EQ(pairs[0], 0);
    EXPECT_EQ(pairs[1], 3);
}

TEST(IndexSelector, EmptyWhenDisjoint)
{
    encode::Bitmap w{{1, 0}};
    encode::Bitmap a{{0, 1}};
    EXPECT_TRUE(selectPairs(w, a).empty());
}

TEST(IndexSelector, LengthMismatchDies)
{
    encode::Bitmap w{{1, 0}};
    encode::Bitmap a{{1}};
    EXPECT_DEATH(selectPairs(w, a), "mismatch");
}

/** Sweep: vector-wise beats element-wise whenever cols > 1. */
class OverheadSweep : public ::testing::TestWithParam<int64_t>
{
};

TEST_P(OverheadSweep, VectorWiseAlwaysCheaper)
{
    const int64_t cols = GetParam();
    auto o = indexOverhead(128, cols);
    EXPECT_EQ(o.elementWiseBits, 128 * cols);
    EXPECT_EQ(o.vectorWiseBits, 128);
    if (cols > 1) {
        EXPECT_LT(o.vectorWiseBits, o.elementWiseBits);
    }
}

INSTANTIATE_TEST_SUITE_P(Cols, OverheadSweep,
                         ::testing::Values<int64_t>(1, 3, 5, 7, 9));

} // namespace
} // namespace se
