/**
 * @file
 * Unit tests for the NN framework: layer forward semantics against
 * hand-computed references and finite-difference gradient checks for
 * every layer's backward pass.
 */

#include <gtest/gtest.h>

#include <cmath>

#include "base/random.hh"
#include "nn/blocks.hh"
#include "nn/loss.hh"
#include "nn/optim.hh"

namespace se {
namespace {

using nn::BatchNorm2d;
using nn::Conv2d;
using nn::Flatten;
using nn::GlobalAvgPool;
using nn::InvertedResidual;
using nn::Linear;
using nn::MaxPool2d;
using nn::ReLU;
using nn::Residual;
using nn::Sequential;
using nn::Sigmoid;
using nn::SqueezeExcite;
using nn::UpsampleNearest;

/**
 * Finite-difference gradient check of d(sum(layer(x)))/dx against the
 * layer's backward. Returns the max absolute difference.
 */
double
inputGradError(nn::Layer &layer, const Tensor &x, double eps = 1e-3)
{
    Tensor y = layer.forward(x, /*train=*/true);
    Tensor gy(y.shape(), 1.0f);
    layer.zeroGrad();
    Tensor gx = layer.backward(gy);

    double max_err = 0.0;
    // Probe a subset of positions to keep the test fast.
    const int64_t step = std::max<int64_t>(1, x.size() / 24);
    for (int64_t i = 0; i < x.size(); i += step) {
        Tensor xp = x, xm = x;
        xp[i] += (float)eps;
        xm[i] -= (float)eps;
        const double fp = layer.forward(xp, true).sum();
        const double fm = layer.forward(xm, true).sum();
        const double num = (fp - fm) / (2 * eps);
        max_err = std::max(max_err, std::abs(num - (double)gx[i]));
    }
    // Restore the cache for callers that continue using the layer.
    layer.forward(x, true);
    return max_err;
}

/** Finite-difference check of parameter gradients. */
double
paramGradError(nn::Layer &layer, const Tensor &x, double eps = 1e-3)
{
    Tensor y = layer.forward(x, true);
    Tensor gy(y.shape(), 1.0f);
    layer.zeroGrad();
    layer.backward(gy);

    double max_err = 0.0;
    for (auto &p : layer.params()) {
        const int64_t step =
            std::max<int64_t>(1, p.value->size() / 16);
        for (int64_t i = 0; i < p.value->size(); i += step) {
            const float save = (*p.value)[i];
            (*p.value)[i] = save + (float)eps;
            const double fp = layer.forward(x, true).sum();
            (*p.value)[i] = save - (float)eps;
            const double fm = layer.forward(x, true).sum();
            (*p.value)[i] = save;
            const double num = (fp - fm) / (2 * eps);
            max_err = std::max(
                max_err, std::abs(num - (double)(*p.grad)[i]));
        }
    }
    layer.forward(x, true);
    return max_err;
}

TEST(Conv2d, MatchesHandComputed1x1)
{
    Rng rng(1);
    Conv2d conv(2, 1, 1, 1, 0, 1, rng, false);
    conv.weightTensor().at(0, 0, 0, 0) = 2.0f;
    conv.weightTensor().at(0, 1, 0, 0) = -1.0f;
    Tensor x({1, 2, 2, 2});
    for (int64_t i = 0; i < x.size(); ++i)
        x[i] = (float)(i + 1);
    Tensor y = conv.forward(x, false);
    // y = 2*ch0 - ch1; ch0 = [1..4], ch1 = [5..8].
    EXPECT_FLOAT_EQ(y.at(0, 0, 0, 0), 2 * 1 - 5);
    EXPECT_FLOAT_EQ(y.at(0, 0, 1, 1), 2 * 4 - 8);
}

TEST(Conv2d, PaddingAndStrideShapes)
{
    Rng rng(2);
    Conv2d conv(3, 8, 3, 2, 1, 1, rng);
    Tensor x({2, 3, 9, 9});
    Tensor y = conv.forward(x, false);
    EXPECT_EQ(y.dim(0), 2);
    EXPECT_EQ(y.dim(1), 8);
    EXPECT_EQ(y.dim(2), 5);
    EXPECT_EQ(y.dim(3), 5);
}

TEST(Conv2d, DepthwiseLeavesChannelsIndependent)
{
    Rng rng(3);
    Conv2d conv(2, 2, 3, 1, 1, 2, rng, false);
    // Zero the second filter: its output channel must be all zero,
    // regardless of channel 0's content.
    Tensor &w = conv.weightTensor();
    for (int64_t k = 0; k < 9; ++k)
        w[9 + k] = 0.0f;
    Rng xr(4);
    Tensor x = randn({1, 2, 5, 5}, xr);
    Tensor y = conv.forward(x, false);
    for (int64_t i = 0; i < 5; ++i)
        for (int64_t j = 0; j < 5; ++j)
            EXPECT_FLOAT_EQ(y.at(0, 1, i, j), 0.0f);
}

TEST(Conv2d, GradientCheck)
{
    Rng rng(5);
    Conv2d conv(2, 3, 3, 1, 1, 1, rng);
    Tensor x = randn({1, 2, 4, 4}, rng);
    EXPECT_LT(inputGradError(conv, x), 1e-2);
    EXPECT_LT(paramGradError(conv, x), 1e-2);
}

TEST(Conv2d, DepthwiseGradientCheck)
{
    Rng rng(6);
    Conv2d conv(3, 3, 3, 1, 1, 3, rng, false);
    Tensor x = randn({1, 3, 4, 4}, rng);
    EXPECT_LT(inputGradError(conv, x), 1e-2);
    EXPECT_LT(paramGradError(conv, x), 1e-2);
}

TEST(Conv2d, StridedGradientCheck)
{
    Rng rng(7);
    Conv2d conv(2, 2, 3, 2, 1, 1, rng);
    Tensor x = randn({1, 2, 5, 5}, rng);
    EXPECT_LT(inputGradError(conv, x), 1e-2);
}

TEST(Conv2d, DilatedForwardShape)
{
    Rng rng(17);
    Conv2d conv(2, 2, 3, 1, 2, 1, rng, false, 2);
    Tensor x = randn({1, 2, 8, 8}, rng);
    Tensor y = conv.forward(x, false);
    EXPECT_EQ(y.dim(2), 8);
    EXPECT_EQ(y.dim(3), 8);
}

TEST(Linear, MatchesHandComputed)
{
    Rng rng(8);
    Linear lin(3, 2, rng);
    Tensor &w = lin.weightTensor();
    w.at(0, 0) = 1;  w.at(0, 1) = 2;  w.at(0, 2) = 3;
    w.at(1, 0) = -1; w.at(1, 1) = 0;  w.at(1, 2) = 1;
    lin.params()[1].value->fill(0.0f);
    Tensor x({1, 3}, std::vector<float>{1, 2, 3});
    Tensor y = lin.forward(x, false);
    EXPECT_FLOAT_EQ(y.at(0, 0), 14.0f);
    EXPECT_FLOAT_EQ(y.at(0, 1), 2.0f);
}

TEST(Linear, GradientCheck)
{
    Rng rng(9);
    Linear lin(5, 4, rng);
    Tensor x = randn({3, 5}, rng);
    EXPECT_LT(inputGradError(lin, x), 1e-2);
    EXPECT_LT(paramGradError(lin, x), 1e-2);
}

TEST(BatchNorm, NormalizesBatchStatistics)
{
    BatchNorm2d bn(2);
    Rng rng(10);
    Tensor x = randn({4, 2, 3, 3}, rng, 5.0f, 2.0f);
    Tensor y = bn.forward(x, true);
    // Per-channel mean ~0, var ~1.
    for (int64_t c = 0; c < 2; ++c) {
        double s = 0.0, s2 = 0.0;
        int64_t n = 0;
        for (int64_t b = 0; b < 4; ++b)
            for (int64_t i = 0; i < 3; ++i)
                for (int64_t j = 0; j < 3; ++j) {
                    const double v = y.at(b, c, i, j);
                    s += v;
                    s2 += v * v;
                    ++n;
                }
        EXPECT_NEAR(s / n, 0.0, 1e-4);
        EXPECT_NEAR(s2 / n, 1.0, 1e-2);
    }
}

TEST(BatchNorm, EvalUsesRunningStats)
{
    BatchNorm2d bn(1);
    Rng rng(11);
    // Train on several batches to populate running stats.
    for (int i = 0; i < 50; ++i)
        bn.forward(randn({8, 1, 2, 2}, rng, 3.0f, 1.0f), true);
    Tensor x({1, 1, 2, 2}, 3.0f);
    Tensor y = bn.forward(x, false);
    // Input at the running mean should map near zero.
    EXPECT_NEAR(y.at(0, 0, 0, 0), 0.0, 0.2);
}

TEST(BatchNorm, GradientCheck)
{
    BatchNorm2d bn(2);
    Rng rng(12);
    Tensor x = randn({3, 2, 3, 3}, rng);
    EXPECT_LT(inputGradError(bn, x), 2e-2);
    EXPECT_LT(paramGradError(bn, x), 2e-2);
}

TEST(ReLU, ForwardAndMask)
{
    ReLU relu;
    Tensor x({4}, std::vector<float>{-1, 0, 2, -3});
    Tensor y = relu.forward(x, true);
    EXPECT_FLOAT_EQ(y[0], 0);
    EXPECT_FLOAT_EQ(y[2], 2);
    Tensor g = relu.backward(Tensor({4}, 1.0f));
    EXPECT_FLOAT_EQ(g[0], 0);
    EXPECT_FLOAT_EQ(g[2], 1);
}

TEST(ReLU, Relu6Clamps)
{
    ReLU relu6(6.0f);
    Tensor x({3}, std::vector<float>{-1, 3, 10});
    Tensor y = relu6.forward(x, true);
    EXPECT_FLOAT_EQ(y[0], 0);
    EXPECT_FLOAT_EQ(y[1], 3);
    EXPECT_FLOAT_EQ(y[2], 6);
    Tensor g = relu6.backward(Tensor({3}, 1.0f));
    EXPECT_FLOAT_EQ(g[2], 0);  // clamped region has zero gradient
}

TEST(Sigmoid, GradientCheck)
{
    Sigmoid sig;
    Rng rng(13);
    Tensor x = randn({2, 6}, rng);
    EXPECT_LT(inputGradError(sig, x), 1e-3);
}

TEST(MaxPool, ForwardPicksMaxAndRoutesGradient)
{
    MaxPool2d pool(2, 2);
    Tensor x({1, 1, 2, 2}, std::vector<float>{1, 5, 3, 2});
    Tensor y = pool.forward(x, true);
    EXPECT_FLOAT_EQ(y.at(0, 0, 0, 0), 5.0f);
    Tensor g = pool.backward(Tensor({1, 1, 1, 1}, 1.0f));
    EXPECT_FLOAT_EQ(g[1], 1.0f);
    EXPECT_FLOAT_EQ(g[0], 0.0f);
}

TEST(GlobalAvgPool, ForwardAndGradient)
{
    GlobalAvgPool gap;
    Tensor x({1, 1, 2, 2}, std::vector<float>{1, 2, 3, 6});
    Tensor y = gap.forward(x, true);
    EXPECT_FLOAT_EQ(y.at(0, 0, 0, 0), 3.0f);
    Tensor g = gap.backward(Tensor({1, 1, 1, 1}, 4.0f));
    for (int64_t i = 0; i < 4; ++i)
        EXPECT_FLOAT_EQ(g[i], 1.0f);
}

TEST(Upsample, NearestForwardBackward)
{
    UpsampleNearest up(2);
    Tensor x({1, 1, 2, 2}, std::vector<float>{1, 2, 3, 4});
    Tensor y = up.forward(x, true);
    EXPECT_EQ(y.dim(2), 4);
    EXPECT_FLOAT_EQ(y.at(0, 0, 0, 1), 1.0f);
    EXPECT_FLOAT_EQ(y.at(0, 0, 3, 3), 4.0f);
    Tensor g = up.backward(Tensor(y.shape(), 1.0f));
    for (int64_t i = 0; i < 4; ++i)
        EXPECT_FLOAT_EQ(g[i], 4.0f);
}

TEST(SqueezeExcite, ScalesChannels)
{
    Rng rng(14);
    SqueezeExcite se(4, 2, rng);
    Tensor x = randn({2, 4, 3, 3}, rng);
    Tensor y = se.forward(x, false);
    // Output must be x scaled per channel by something in (0, 1).
    for (int64_t b = 0; b < 2; ++b)
        for (int64_t c = 0; c < 4; ++c) {
            // Find ratio from a non-zero element.
            for (int64_t i = 0; i < 3; ++i)
                for (int64_t j = 0; j < 3; ++j)
                    if (std::abs(x.at(b, c, i, j)) > 1e-3) {
                        const double ratio =
                            y.at(b, c, i, j) / x.at(b, c, i, j);
                        EXPECT_GT(ratio, 0.0);
                        EXPECT_LT(ratio, 1.0);
                    }
        }
}

TEST(SqueezeExcite, GradientCheck)
{
    Rng rng(15);
    SqueezeExcite se(3, 2, rng);
    Tensor x = randn({1, 3, 3, 3}, rng);
    EXPECT_LT(inputGradError(se, x), 2e-2);
}

TEST(Residual, IdentitySkipAddsInput)
{
    Rng rng(16);
    auto main = std::make_unique<Sequential>();
    auto *conv = main->add<Conv2d>(2, 2, 3, 1, 1, 1, rng, false);
    conv->weightTensor().fill(0.0f);  // main path outputs zero
    Residual res(std::move(main), nullptr);
    Tensor x = randn({1, 2, 4, 4}, rng);
    x.apply([](float v) { return std::abs(v); });  // positive input
    Tensor y = res.forward(x, false);
    for (int64_t i = 0; i < x.size(); ++i)
        EXPECT_FLOAT_EQ(y[i], x[i]);  // relu(0 + x) == x
}

TEST(Residual, GradientCheck)
{
    Rng rng(17);
    auto main = std::make_unique<Sequential>();
    main->add<Conv2d>(2, 2, 3, 1, 1, 1, rng, false);
    Residual res(std::move(main), nullptr);
    Tensor x = randn({1, 2, 3, 3}, rng);
    EXPECT_LT(inputGradError(res, x), 1e-2);
}

TEST(InvertedResidual, SkipOnlyWhenShapesMatch)
{
    Rng rng(18);
    InvertedResidual with_skip(4, 4, 1, 2, false, rng);
    InvertedResidual no_skip(4, 8, 1, 2, false, rng);
    EXPECT_TRUE(with_skip.hasSkip());
    EXPECT_FALSE(no_skip.hasSkip());
    Tensor x = randn({1, 4, 4, 4}, rng);
    Tensor y = no_skip.forward(x, false);
    EXPECT_EQ(y.dim(1), 8);
}

TEST(Sequential, VisitReachesAllLeaves)
{
    Rng rng(19);
    Sequential net;
    net.add<Conv2d>(2, 4, 3, 1, 1, 1, rng);
    net.add<BatchNorm2d>(4);
    net.add<ReLU>();
    net.add<InvertedResidual>(4, 4, 1, 2, true, rng);
    int leaves = 0;
    net.visit([&](nn::Layer &) { ++leaves; });
    // conv, bn, relu + inverted residual's leaves (expand conv/bn/relu,
    // dw conv/bn/relu, SE's 2 FCs, project conv/bn).
    EXPECT_EQ(leaves, 3 + 3 + 3 + 2 + 2);
}

TEST(Loss, SoftmaxCrossEntropyGradientSumsToZero)
{
    Rng rng(20);
    Tensor logits = randn({4, 5}, rng);
    auto res = nn::softmaxCrossEntropy(logits, {0, 1, 2, 3});
    EXPECT_GT(res.loss, 0.0);
    for (int64_t b = 0; b < 4; ++b) {
        double s = 0.0;
        for (int64_t c = 0; c < 5; ++c)
            s += res.grad.at(b, c);
        EXPECT_NEAR(s, 0.0, 1e-6);
    }
}

TEST(Loss, PerfectPredictionLowLoss)
{
    Tensor logits({2, 3}, std::vector<float>{10, 0, 0, 0, 10, 0});
    auto res = nn::softmaxCrossEntropy(logits, {0, 1});
    EXPECT_LT(res.loss, 1e-3);
    EXPECT_DOUBLE_EQ(nn::accuracy(logits, {0, 1}), 1.0);
}

TEST(Loss, PixelCrossEntropyShape)
{
    Rng rng(21);
    Tensor logits = randn({1, 3, 4, 4}, rng);
    Tensor labels({1, 4, 4}, 1.0f);
    auto res = nn::pixelCrossEntropy(logits, labels);
    EXPECT_GT(res.loss, 0.0);
    EXPECT_EQ(res.grad.size(), logits.size());
}

TEST(Loss, MeanIoUPerfect)
{
    Tensor logits({1, 2, 2, 2}, 0.0f);
    Tensor labels({1, 2, 2}, 0.0f);
    // Predict class 0 everywhere: logits[c=0] high.
    for (int64_t i = 0; i < 2; ++i)
        for (int64_t j = 0; j < 2; ++j)
            logits.at(0, 0, i, j) = 5.0f;
    EXPECT_DOUBLE_EQ(nn::meanIoU(logits, labels, 2), 1.0);
}

TEST(Sgd, ConvergesOnQuadratic)
{
    // Minimize sum((w - 3)^2) through the Param interface.
    Tensor w({4}, 0.0f), g({4});
    nn::Sgd opt(0.1f, 0.0f);
    for (int it = 0; it < 200; ++it) {
        for (int64_t i = 0; i < 4; ++i)
            g[i] = 2.0f * (w[i] - 3.0f);
        opt.step({{&w, &g, "w"}});
    }
    for (int64_t i = 0; i < 4; ++i)
        EXPECT_NEAR(w[i], 3.0f, 1e-3);
}

TEST(Sgd, MomentumAcceleratesDescent)
{
    Tensor w1({1}, 10.0f), g1({1});
    Tensor w2({1}, 10.0f), g2({1});
    nn::Sgd plain(0.01f, 0.0f), momentum(0.01f, 0.9f);
    for (int it = 0; it < 50; ++it) {
        g1[0] = 2.0f * w1[0];
        plain.step({{&w1, &g1, "w"}});
        g2[0] = 2.0f * w2[0];
        momentum.step({{&w2, &g2, "w"}});
    }
    EXPECT_LT(std::abs(w2[0]), std::abs(w1[0]));
}

} // namespace
} // namespace se
