/**
 * @file
 * Cross-module property tests: invariants that must hold across the
 * whole stack rather than within one module.
 */

#include <gtest/gtest.h>

#include "accel/annotate.hh"
#include "accel/baselines.hh"
#include "accel/smartexchange_accel.hh"
#include "base/random.hh"
#include "core/smart_exchange.hh"
#include "linalg/linalg.hh"
#include "models/zoo.hh"
#include "quant/quant.hh"

namespace se {
namespace {

using models::ModelId;

TEST(Properties, RunNetworkIsSumOfLayers)
{
    accel::SmartExchangeAccel acc;
    auto w = accel::annotatedWorkload(ModelId::ResNet164);
    sim::RunStats manual;
    for (const auto &l : w.layers)
        manual += acc.runLayer(l);
    auto st = acc.runNetwork(w, true);
    EXPECT_EQ(st.cycles, manual.cycles);
    EXPECT_DOUBLE_EQ(st.totalEnergyPj(), manual.totalEnergyPj());
    EXPECT_EQ(st.dramTrafficBits, manual.dramTrafficBits);
}

TEST(Properties, AcceleratorRunsAreDeterministic)
{
    for (ModelId id : {ModelId::VGG11, ModelId::MobileNetV2}) {
        auto w = accel::annotatedWorkload(id);
        accel::SmartExchangeAccel a, b;
        auto s1 = a.runNetwork(w, false);
        auto s2 = b.runNetwork(w, false);
        EXPECT_EQ(s1.cycles, s2.cycles);
        EXPECT_DOUBLE_EQ(s1.totalEnergyPj(), s2.totalEnergyPj());
    }
}

TEST(Properties, SparsityProfilesAreWellFormed)
{
    for (ModelId id : models::acceleratorBenchmarkModels()) {
        auto p = accel::defaultProfile(id);
        EXPECT_GE(p.weightVectorSparsity, 0.0);
        EXPECT_LE(p.weightVectorSparsity, 1.0);
        EXPECT_GE(p.weightElementSparsity,
                  p.weightVectorSparsity - 1e-9)
            << models::modelName(id)
            << ": element sparsity must cover vector sparsity";
        EXPECT_GT(p.actAvgBoothDigits, 0.0);
        EXPECT_LE(p.actAvgBoothDigits, 4.0);
        EXPECT_LE(p.actAvgEssentialBits, 8.0);
    }
}

TEST(Properties, TrainedWeightsDecomposeBetterThanRandom)
{
    // Structured (smooth) weights should reconstruct at least as well
    // as i.i.d. noise under the same budget — the redundancy argument
    // behind the whole compression literature.
    Rng rng(3);
    Tensor random = randn({96, 3}, rng, 0.0f, 0.1f);
    // "Trained-like": low-rank structure plus small noise.
    Tensor u = randn({96, 2}, rng, 0.0f, 0.3f);
    Tensor v = randn({2, 3}, rng, 0.0f, 0.3f);
    Tensor structured = linalg::matmul(u, v);
    for (int64_t i = 0; i < structured.size(); ++i)
        structured[i] += rng.gaussian(0.0f, 0.005f);

    core::SeOptions opts;
    auto se_rand = core::decomposeMatrix(random, opts);
    auto se_struct = core::decomposeMatrix(structured, opts);
    EXPECT_LT(se_struct.reconRelError, se_rand.reconRelError);
}

TEST(Properties, CompressionMonotoneInSparsityBudget)
{
    Rng rng(4);
    Tensor w = randn({120, 3}, rng, 0.0f, 0.1f);
    double prev_bits = 1e18;
    for (double target : {0.0, 0.3, 0.6, 0.9}) {
        core::SeOptions opts;
        opts.minVectorSparsity = target;
        auto sem = core::decomposeMatrix(w, opts);
        const double bits =
            (double)(sem.ceStorageBits(4) + sem.basisStorageBits(8));
        EXPECT_LE(bits, prev_bits + 1e-9);
        prev_bits = bits;
    }
}

TEST(Properties, ErrorMonotoneInSparsityBudget)
{
    // More pruning cannot improve the fit (on average it degrades);
    // allow small slack for the heuristic's non-optimality.
    Rng rng(5);
    Tensor w = randn({120, 3}, rng, 0.0f, 0.1f);
    core::SeOptions loose, tight;
    loose.minVectorSparsity = 0.1;
    tight.minVectorSparsity = 0.8;
    auto a = core::decomposeMatrix(w, loose);
    auto b = core::decomposeMatrix(w, tight);
    EXPECT_GE(b.reconRelError, a.reconRelError - 0.05);
}

TEST(Properties, BoothDigitBounds)
{
    // Each set bit of the magnitude influences at most the two digit
    // windows it straddles, so non-zero Booth digits <= 2 * popcount;
    // and radix-4 recoding of n bits never emits more than ceil(n/2)
    // digits. Both bounds hold over the full 8-bit range.
    for (int v = -128; v <= 127; ++v) {
        const int digits = quant::boothNonzeroDigits(v, 8);
        EXPECT_LE(digits, 4) << "v=" << v;
        if (v != 0) {
            EXPECT_LE(digits, 2 * (quant::essentialBits(v, 8) + 1))
                << "v=" << v;
            EXPECT_GE(digits, 1) << "v=" << v;
        }
    }
}

TEST(Properties, PaperWorkloadsStableAcrossCalls)
{
    for (ModelId id : {ModelId::ResNet50, ModelId::EfficientNetB0}) {
        auto a = models::paperShapes(id);
        auto b = models::paperShapes(id);
        ASSERT_EQ(a.layers.size(), b.layers.size());
        EXPECT_EQ(a.totalMacs(), b.totalMacs());
        EXPECT_EQ(a.totalWeights(), b.totalWeights());
    }
}

TEST(Properties, EnergyBreakdownSumsToTotal)
{
    accel::SmartExchangeAccel acc;
    auto w = accel::annotatedWorkload(ModelId::VGG19);
    auto st = acc.runNetwork(w, true);
    double sum = 0.0;
    for (size_t c = 0; c < sim::kNumComponents; ++c)
        sum += st.energyPj[c];
    EXPECT_NEAR(sum, st.totalEnergyPj(), 1e-6 * sum);
}

TEST(Properties, AllAcceleratorsChargeSameTableIForDram)
{
    // Methodological fairness: a byte of DRAM costs every
    // accelerator the same.
    sim::LayerShape l;
    l.kind = sim::LayerKind::Conv;
    l.c = 16;
    l.m = 16;
    l.h = l.w = 8;
    l.r = l.s = 3;
    l.pad = 1;
    accel::DianNao dn;
    accel::BitPragmatic bp;
    auto a = dn.runLayer(l);
    auto b = bp.runLayer(l);
    // Identical dense-weight traffic at identical unit energy.
    EXPECT_DOUBLE_EQ(a.energy(sim::Component::DramWeight),
                     b.energy(sim::Component::DramWeight));
}

} // namespace
} // namespace se
