/**
 * @file
 * Unit and property tests for the dense linear algebra kernels, in
 * particular the alternating least-squares updates that drive the
 * SmartExchange decomposition.
 */

#include <gtest/gtest.h>

#include <cstring>
#include <vector>

#include "base/random.hh"
#include "kernels/kernels.hh"
#include "linalg/linalg.hh"

namespace se {
namespace {

/** Flip the process-wide kernel lowering for one scope. */
class ScopedImpl
{
  public:
    explicit ScopedImpl(kernels::ConvImpl impl)
        : prev_(kernels::defaultConvImpl())
    {
        kernels::setDefaultConvImpl(impl);
    }
    ~ScopedImpl() { kernels::setDefaultConvImpl(prev_); }

  private:
    kernels::ConvImpl prev_;
};

using linalg::choleskySolve;
using linalg::fitBasis;
using linalg::fitCoefficients;
using linalg::fitCoefficientsMasked;
using linalg::frobDiff;
using linalg::frobNorm;
using linalg::matmul;
using linalg::transpose;

TEST(Linalg, MatmulSmall)
{
    Tensor a({2, 3}, std::vector<float>{1, 2, 3, 4, 5, 6});
    Tensor b({3, 2}, std::vector<float>{7, 8, 9, 10, 11, 12});
    Tensor c = matmul(a, b);
    EXPECT_FLOAT_EQ(c.at(0, 0), 58.0f);
    EXPECT_FLOAT_EQ(c.at(0, 1), 64.0f);
    EXPECT_FLOAT_EQ(c.at(1, 0), 139.0f);
    EXPECT_FLOAT_EQ(c.at(1, 1), 154.0f);
}

TEST(Linalg, MatmulIdentity)
{
    Rng rng(1);
    Tensor a = randn({5, 5}, rng);
    Tensor c = matmul(a, eye(5));
    EXPECT_LT(frobDiff(a, c), 1e-6);
}

TEST(Linalg, MatmulDimMismatchDies)
{
    Tensor a({2, 3});
    Tensor b({2, 3});
    EXPECT_DEATH(matmul(a, b), "inner dim");
}

TEST(Linalg, TransposeRoundTrip)
{
    Rng rng(2);
    Tensor a = randn({4, 7}, rng);
    Tensor t = transpose(transpose(a));
    EXPECT_LT(frobDiff(a, t), 1e-7);
}

TEST(Linalg, FrobNorm)
{
    Tensor a({2, 2}, std::vector<float>{3, 0, 0, 4});
    EXPECT_NEAR(frobNorm(a), 5.0, 1e-6);
}

TEST(Linalg, CholeskySolvesSpdSystem)
{
    // A = M^T M + I is SPD.
    Rng rng(3);
    Tensor m = randn({6, 6}, rng);
    Tensor a = matmul(transpose(m), m);
    for (int64_t i = 0; i < 6; ++i)
        a.at(i, i) += 1.0f;
    Tensor x_true = randn({6, 2}, rng);
    Tensor b = matmul(a, x_true);
    Tensor x = choleskySolve(a, b);
    EXPECT_LT(frobDiff(x, x_true), 1e-3);
}

TEST(Linalg, CholeskyRejectsIndefinite)
{
    Tensor a({2, 2}, std::vector<float>{1, 2, 2, 1});  // eigenvalue -1
    Tensor b({2, 1}, std::vector<float>{1, 1});
    EXPECT_DEATH(choleskySolve(a, b), "positive definite");
}

TEST(Linalg, FitBasisRecoversExactFactorization)
{
    // W = Ce * B exactly; fitBasis must recover B given Ce.
    Rng rng(4);
    Tensor ce = randn({40, 3}, rng);
    Tensor b_true = randn({3, 3}, rng);
    Tensor w = matmul(ce, b_true);
    Tensor b = fitBasis(w, ce);
    EXPECT_LT(frobDiff(b, b_true), 1e-3);
}

TEST(Linalg, FitCoefficientsRecoversExactFactorization)
{
    Rng rng(5);
    Tensor ce_true = randn({40, 3}, rng);
    Tensor b = randn({3, 3}, rng);
    // Make B well-conditioned.
    for (int64_t i = 0; i < 3; ++i)
        b.at(i, i) += 2.0f;
    Tensor w = matmul(ce_true, b);
    Tensor ce = fitCoefficients(w, b);
    EXPECT_LT(frobDiff(ce, ce_true), 1e-2);
}

TEST(Linalg, FitBasisToleratesZeroColumns)
{
    // A fully-pruned coefficient column must not break the solve.
    Rng rng(6);
    Tensor ce = randn({20, 3}, rng);
    for (int64_t i = 0; i < 20; ++i)
        ce.at(i, 1) = 0.0f;
    Tensor w = randn({20, 3}, rng);
    Tensor b = fitBasis(w, ce);
    EXPECT_EQ(b.dim(0), 3);
    for (int64_t i = 0; i < b.size(); ++i)
        EXPECT_TRUE(std::isfinite(b[i]));
}

TEST(Linalg, FitReducesResidualMonotonically)
{
    // One ALS round from a random start must not increase the
    // reconstruction error.
    Rng rng(7);
    Tensor w = randn({30, 3}, rng);
    Tensor ce = w;
    Tensor b = eye(3);
    double prev = frobDiff(w, matmul(ce, b));
    for (int it = 0; it < 5; ++it) {
        b = fitBasis(w, ce);
        ce = fitCoefficients(w, b);
        const double err = frobDiff(w, matmul(ce, b));
        // Slack covers the adaptive ridge bias (~1e-5 relative).
        EXPECT_LE(err, prev + 5e-4);
        prev = err;
    }
}

TEST(Linalg, MaskedFitKeepsZerosZero)
{
    Rng rng(8);
    Tensor w = randn({10, 3}, rng);
    Tensor b = randn({3, 3}, rng);
    for (int64_t i = 0; i < 3; ++i)
        b.at(i, i) += 2.0f;
    Tensor mask({10, 3}, 1.0f);
    mask.at(0, 0) = 0.0f;
    mask.at(4, 2) = 0.0f;
    for (int64_t j = 0; j < 3; ++j)
        mask.at(7, j) = 0.0f;  // fully-pruned row
    Tensor ce = fitCoefficientsMasked(w, b, mask);
    EXPECT_FLOAT_EQ(ce.at(0, 0), 0.0f);
    EXPECT_FLOAT_EQ(ce.at(4, 2), 0.0f);
    for (int64_t j = 0; j < 3; ++j)
        EXPECT_FLOAT_EQ(ce.at(7, j), 0.0f);
}

TEST(Linalg, MaskedFitBeatsZeroedUnmaskedFit)
{
    // Refitting on the support must give at-most-equal error compared
    // to taking the unmasked fit and zeroing entries afterwards.
    Rng rng(9);
    Tensor w = randn({20, 3}, rng);
    Tensor b = randn({3, 3}, rng);
    for (int64_t i = 0; i < 3; ++i)
        b.at(i, i) += 2.0f;
    Tensor free = fitCoefficients(w, b);
    Tensor mask({20, 3}, 1.0f);
    Rng mask_rng(10);
    for (int64_t i = 0; i < mask.size(); ++i)
        if (mask_rng.chance(0.3))
            mask[i] = 0.0f;
    Tensor zeroed = free;
    for (int64_t i = 0; i < zeroed.size(); ++i)
        zeroed[i] *= mask[i];
    Tensor refit = fitCoefficientsMasked(w, b, mask);
    const double err_zeroed = frobDiff(w, matmul(zeroed, b));
    const double err_refit = frobDiff(w, matmul(refit, b));
    EXPECT_LE(err_refit, err_zeroed + 1e-5);
}

TEST(Linalg, MaskedFitGemmLoweringBitIdenticalToLegacy)
{
    // The GEMM-backed masked refit (B B^T and W B^T precomputed once
    // through kernels::gemmABtColBiasD, per-row masked gather) must
    // reproduce the legacy per-row-dot path to the last bit — same
    // contract as matmul's Auto-vs-Naive split. Sweep shapes across
    // ranks and mask densities, including empty rows and a full mask.
    Rng rng(11);
    for (const auto &dims : std::vector<std::vector<int64_t>>{
             {1, 1, 1}, {10, 3, 3}, {33, 5, 17}, {64, 9, 40}}) {
        const int64_t m = dims[0], r = dims[1], n = dims[2];
        Tensor w = randn({m, n}, rng);
        Tensor b = randn({r, n}, rng);
        for (int64_t i = 0; i < r; ++i)
            b.at(i, i % n) += 2.0f;
        for (double density : {1.0, 0.6, 0.25}) {
            Tensor mask({m, r}, 1.0f);
            for (int64_t i = 0; i < mask.size(); ++i)
                if (!rng.chance(density))
                    mask[i] = 0.0f;
            Tensor fast, slow;
            {
                ScopedImpl impl(kernels::ConvImpl::Auto);
                fast = fitCoefficientsMasked(w, b, mask);
            }
            {
                ScopedImpl impl(kernels::ConvImpl::Naive);
                slow = fitCoefficientsMasked(w, b, mask);
            }
            ASSERT_EQ(fast.shape(), slow.shape());
            EXPECT_EQ(std::memcmp(fast.data(), slow.data(),
                                  (size_t)fast.size() * sizeof(float)),
                      0)
                << m << "x" << r << "x" << n
                << " density=" << density;
        }
    }
}

/** Property sweep: ALS fixed points across sizes. */
class AlsSweep : public ::testing::TestWithParam<int64_t>
{
};

TEST_P(AlsSweep, ExactFactorizationsAreFixedPoints)
{
    const int64_t m = GetParam();
    Rng rng(100 + (uint64_t)m);
    Tensor ce = randn({m, 3}, rng);
    Tensor b = randn({3, 3}, rng);
    for (int64_t i = 0; i < 3; ++i)
        b.at(i, i) += 2.0f;
    Tensor w = matmul(ce, b);
    Tensor b2 = fitBasis(w, ce);
    Tensor ce2 = fitCoefficients(w, b2);
    EXPECT_LT(frobDiff(w, matmul(ce2, b2)) /
                  std::max(1e-12, frobNorm(w)),
              1e-3);
}

INSTANTIATE_TEST_SUITE_P(Sizes, AlsSweep,
                         ::testing::Values<int64_t>(3, 9, 27, 64, 192));

} // namespace
} // namespace se
