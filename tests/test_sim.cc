/**
 * @file
 * Tests for the simulation substrate: the Table I energy model, layer
 * shape arithmetic and run statistics.
 */

#include <gtest/gtest.h>

#include "sim/config.hh"
#include "sim/energy_model.hh"
#include "sim/layer_shape.hh"
#include "sim/stats.hh"

namespace se {
namespace {

using sim::ArrayConfig;
using sim::Component;
using sim::EnergyModel;
using sim::LayerKind;
using sim::LayerShape;
using sim::RunStats;

TEST(EnergyModel, TableIValues)
{
    EnergyModel em;
    EXPECT_DOUBLE_EQ(em.dramPj8, 100.0);
    EXPECT_DOUBLE_EQ(em.macPj, 0.143);
    EXPECT_DOUBLE_EQ(em.multPj, 0.124);
    EXPECT_DOUBLE_EQ(em.addPj, 0.019);
    // DRAM access costs >= 9.5x a MAC, the paper's Section II-C claim.
    EXPECT_GE(em.dramPj8 / em.macPj, 9.5);
    EXPECT_GE(em.sramMinPj8 / em.macPj, 9.5);
}

TEST(EnergyModel, SramInterpolationEndpoints)
{
    EnergyModel em;
    EXPECT_NEAR(em.sramPj8(2 * 1024), 1.36, 1e-9);
    EXPECT_NEAR(em.sramPj8(64 * 1024), 2.45, 1e-9);
    const double mid = em.sramPj8(16 * 1024);
    EXPECT_GT(mid, 1.36);
    EXPECT_LT(mid, 2.45);
    // Clamped outside the calibration range.
    EXPECT_NEAR(em.sramPj8(1), 1.36, 1e-9);
    EXPECT_NEAR(em.sramPj8(1 << 30), 2.45, 1e-9);
}

TEST(EnergyModel, SramMonotoneInCapacity)
{
    EnergyModel em;
    double prev = 0.0;
    for (int64_t kb = 2; kb <= 64; kb *= 2) {
        const double e = em.sramPj8(kb * 1024);
        EXPECT_GE(e, prev);
        prev = e;
    }
}

TEST(EnergyModel, DramEnergyScalesWithBits)
{
    EnergyModel em;
    EXPECT_DOUBLE_EQ(em.dramEnergy(8), 100.0);
    EXPECT_DOUBLE_EQ(em.dramEnergy(80), 1000.0);
}

TEST(LayerShape, ConvOutputDims)
{
    LayerShape l;
    l.c = 3;
    l.m = 64;
    l.h = l.w = 224;
    l.r = l.s = 7;
    l.stride = 2;
    l.pad = 3;
    EXPECT_EQ(l.outH(), 112);
    EXPECT_EQ(l.outW(), 112);
    EXPECT_EQ(l.macs(), 64LL * 3 * 49 * 112 * 112);
    EXPECT_EQ(l.weightCount(), 64LL * 3 * 49);
}

TEST(LayerShape, DepthwiseCounts)
{
    LayerShape l;
    l.kind = LayerKind::DepthwiseConv;
    l.c = l.m = 32;
    l.h = l.w = 16;
    l.r = l.s = 3;
    l.pad = 1;
    EXPECT_EQ(l.macs(), 32LL * 9 * 16 * 16);
    EXPECT_EQ(l.weightCount(), 32LL * 9);
}

TEST(LayerShape, FullyConnectedCounts)
{
    LayerShape l;
    l.kind = LayerKind::FullyConnected;
    l.c = 512;
    l.m = 10;
    EXPECT_EQ(l.macs(), 5120);
    EXPECT_EQ(l.weightCount(), 5120);
    EXPECT_EQ(l.inputCount(), 512);
    EXPECT_EQ(l.outputCount(), 10);
}

TEST(ArrayConfig, TableVResources)
{
    auto se_cfg = ArrayConfig::bitSerialDefault();
    EXPECT_EQ(se_cfg.dimM, 64);
    EXPECT_EQ(se_cfg.dimC, 16);
    EXPECT_EQ(se_cfg.dimF, 8);
    EXPECT_EQ(se_cfg.bitSerialLanes(), 8192);
    EXPECT_EQ(se_cfg.parallelMultipliers(), 1024);

    auto dn_cfg = ArrayConfig::parallelDefault();
    EXPECT_EQ(dn_cfg.parallelMultipliers(), 1024);
    // Equal compute budget across all accelerators.
    EXPECT_EQ(se_cfg.parallelMultipliers(),
              dn_cfg.parallelMultipliers());
    EXPECT_EQ(se_cfg.inputGbBytes, 16 * 1024 * 32);
    EXPECT_EQ(se_cfg.outputGbBytes, 2 * 1024 * 2);
}

TEST(RunStats, AccumulationAndTotals)
{
    RunStats a, b;
    a.cycles = 10;
    a.dramTrafficBits = 80;
    a.energy(Component::Pe) = 5.0;
    b.cycles = 7;
    b.dramTrafficBits = 40;
    b.energy(Component::DramInput) = 3.0;
    a += b;
    EXPECT_EQ(a.cycles, 17);
    EXPECT_EQ(a.dramAccessBytes(), 15);
    EXPECT_DOUBLE_EQ(a.totalEnergyPj(), 8.0);
}

TEST(RunStats, ComponentNamesUnique)
{
    std::set<std::string> names;
    for (size_t i = 0; i < sim::kNumComponents; ++i)
        names.insert(sim::componentName((Component)i));
    EXPECT_EQ(names.size(), sim::kNumComponents);
}

} // namespace
} // namespace se
