/**
 * @file
 * Tests of the deterministic fault-injection framework and of every
 * layer it is threaded through: model-file I/O, the streaming loader,
 * the persistent DecompCache spill tier, serve batch execution, and
 * the ServeFront quarantine / hot-reload / fallback machinery.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <future>
#include <memory>
#include <string>
#include <vector>

#include "base/failpoint.hh"
#include "base/hash.hh"
#include "base/random.hh"
#include "core/model_file.hh"
#include "core/smart_exchange.hh"
#include "core/stream_loader.hh"
#include "nn/blocks.hh"
#include "runtime/decomp_cache.hh"
#include "runtime/options.hh"
#include "serve/front.hh"

namespace se {
namespace {

namespace fs = std::filesystem;

/** Every test leaves the process with nothing armed. */
class FailpointTest : public ::testing::Test
{
  protected:
    void SetUp() override { failpoint::disarmAll(); }
    void TearDown() override { failpoint::disarmAll(); }
};

using FailpointParse = FailpointTest;
using FailpointTrigger = FailpointTest;
using FailpointMacros = FailpointTest;
using FailpointEnv = FailpointTest;
using ModelFileInjection = FailpointTest;
using StreamInjection = FailpointTest;
using SpillInjection = FailpointTest;
using ServeInjection = FailpointTest;

// ------------------------------------------------------------ parsing

TEST_F(FailpointParse, PolicyAccepts)
{
    EXPECT_EQ(failpoint::parsePolicy("once").kind,
              failpoint::Policy::Kind::Once);

    const auto every = failpoint::parsePolicy("1in8");
    EXPECT_EQ(every.kind, failpoint::Policy::Kind::EveryN);
    EXPECT_EQ(every.n, 8u);

    const auto after = failpoint::parsePolicy("after3");
    EXPECT_EQ(after.kind, failpoint::Policy::Kind::AfterN);
    EXPECT_EQ(after.n, 3u);

    const auto prob = failpoint::parsePolicy("p0.25");
    EXPECT_EQ(prob.kind, failpoint::Policy::Kind::Prob);
    EXPECT_DOUBLE_EQ(prob.p, 0.25);

    const auto seeded = failpoint::parsePolicy("p0.5@42");
    EXPECT_DOUBLE_EQ(seeded.p, 0.5);
    EXPECT_EQ(seeded.seed, 42u);
}

TEST_F(FailpointParse, PolicyRejects)
{
    for (const char *bad :
         {"", "twice", "1in", "1in0", "1inx", "1in8x", "after",
          "afterx", "p", "p0", "p-0.5", "p1.5", "p0.5@", "p0.5@x",
          "ONCE"})
        EXPECT_THROW(failpoint::parsePolicy(bad),
                     std::invalid_argument)
            << "policy '" << bad << "' should be rejected";
}

TEST_F(FailpointParse, SpecAcceptsListAndEmpty)
{
    const auto parsed =
        failpoint::parseSpec("a:once,b:1in4,c:p0.5@7");
    ASSERT_EQ(parsed.size(), 3u);
    EXPECT_EQ(parsed[0].first, "a");
    EXPECT_EQ(parsed[1].first, "b");
    EXPECT_EQ(parsed[2].first, "c");
    EXPECT_TRUE(failpoint::parseSpec("").empty());
}

TEST_F(FailpointParse, SpecRejectsMalformedItems)
{
    for (const char *bad :
         {"a", "a:", ":once", "a:once,", ",a:once", "a:once,a:1in2",
          "a:bogus", "a:once,,b:once"})
        EXPECT_THROW(failpoint::parseSpec(bad), std::invalid_argument)
            << "spec '" << bad << "' should be rejected";
}

// ----------------------------------------------------------- triggers

TEST_F(FailpointTrigger, UnarmedIsANoop)
{
    EXPECT_FALSE(failpoint::anyArmed());
    EXPECT_FALSE(failpoint::evaluate("never_armed"));
    EXPECT_EQ(failpoint::hitCount("never_armed"), 0u);
    EXPECT_NO_THROW(SE_FAILPOINT("never_armed"));
}

TEST_F(FailpointTrigger, OnceFiresOnFirstEvaluationOnly)
{
    failpoint::arm("fp", "once");
    EXPECT_TRUE(failpoint::anyArmed());
    EXPECT_TRUE(failpoint::evaluate("fp"));
    for (int i = 0; i < 5; ++i)
        EXPECT_FALSE(failpoint::evaluate("fp"));
    EXPECT_EQ(failpoint::hitCount("fp"), 6u);
    EXPECT_EQ(failpoint::fireCount("fp"), 1u);
}

TEST_F(FailpointTrigger, EveryNFiresOnMultiplesOfN)
{
    failpoint::arm("fp", "1in3");
    std::vector<bool> fired;
    for (int i = 0; i < 9; ++i)
        fired.push_back(failpoint::evaluate("fp"));
    const std::vector<bool> want = {false, false, true,  false, false,
                                    true,  false, false, true};
    EXPECT_EQ(fired, want);
    EXPECT_EQ(failpoint::fireCount("fp"), 3u);
}

TEST_F(FailpointTrigger, AfterNFiresOnEveryLaterEvaluation)
{
    failpoint::arm("fp", "after2");
    EXPECT_FALSE(failpoint::evaluate("fp"));
    EXPECT_FALSE(failpoint::evaluate("fp"));
    EXPECT_TRUE(failpoint::evaluate("fp"));
    EXPECT_TRUE(failpoint::evaluate("fp"));
    EXPECT_EQ(failpoint::fireCount("fp"), 2u);
}

TEST_F(FailpointTrigger, ProbIsDeterministicPerSeed)
{
    auto draw = [](const std::string &policy) {
        failpoint::arm("fp", policy);
        std::vector<bool> out;
        for (int i = 0; i < 64; ++i)
            out.push_back(failpoint::evaluate("fp"));
        return out;
    };
    const auto a = draw("p0.5@123");
    const auto b = draw("p0.5@123");
    EXPECT_EQ(a, b);  // re-arming with the same seed replays exactly
    const auto c = draw("p0.5@124");
    EXPECT_NE(a, c);  // another seed is another (deterministic) run
    // The rate is plausibly p, not 0 or 1 (64 draws, p = 0.5).
    const size_t fires = (size_t)std::count(a.begin(), a.end(), true);
    EXPECT_GT(fires, 10u);
    EXPECT_LT(fires, 54u);
}

TEST_F(FailpointTrigger, DisarmStopsFiringAndKeepsCounters)
{
    failpoint::arm("fp", "after0");  // fires on every evaluation
    EXPECT_TRUE(failpoint::evaluate("fp"));
    failpoint::disarm("fp");
    EXPECT_FALSE(failpoint::anyArmed());
    EXPECT_FALSE(failpoint::evaluate("fp"));
    EXPECT_EQ(failpoint::hitCount("fp"), 1u);  // post-disarm not counted
    EXPECT_EQ(failpoint::fireCount("fp"), 1u);
}

TEST_F(FailpointTrigger, ArmFromSpecReplacesPreviousArming)
{
    failpoint::arm("old", "once");
    failpoint::armFromSpec("a:once,b:1in2");
    const auto names = failpoint::armedNames();
    ASSERT_EQ(names.size(), 2u);
    EXPECT_EQ(names[0], "a");
    EXPECT_EQ(names[1], "b");
    EXPECT_FALSE(failpoint::evaluate("old"));
    failpoint::armFromSpec("");
    EXPECT_FALSE(failpoint::anyArmed());
}

TEST_F(FailpointMacros, ThrowTypesCarryThePrefixAndName)
{
    failpoint::arm("fp_plain", "once");
    try {
        SE_FAILPOINT("fp_plain");
        FAIL() << "armed failpoint did not throw";
    } catch (const failpoint::InjectedFault &e) {
        EXPECT_NE(std::string(e.what()).find(
                      failpoint::kInjectedPrefix),
                  std::string::npos);
        EXPECT_NE(std::string(e.what()).find("fp_plain"),
                  std::string::npos);
    }

    failpoint::arm("fp_typed", "once");
    try {
        SE_FAILPOINT_THROW("fp_typed", core::ModelFileError);
        FAIL() << "armed failpoint did not throw";
    } catch (const core::ModelFileError &e) {
        EXPECT_NE(std::string(e.what()).find(
                      failpoint::kInjectedPrefix),
                  std::string::npos);
    }
}

// ------------------------------------------------- RuntimeOptions env

/** RAII env var that restores the previous value on scope exit. */
class ScopedEnv
{
  public:
    ScopedEnv(const char *name, const char *value) : name_(name)
    {
        if (const char *prev = std::getenv(name))
            prev_ = prev;
        had_ = std::getenv(name) != nullptr;
        ::setenv(name, value, 1);
    }
    ~ScopedEnv()
    {
        if (had_)
            ::setenv(name_.c_str(), prev_.c_str(), 1);
        else
            ::unsetenv(name_.c_str());
    }

  private:
    std::string name_, prev_;
    bool had_ = false;
};

TEST_F(FailpointEnv, FromEnvAcceptsAndAppliesSpec)
{
    ScopedEnv fp("SE_FAILPOINTS",
                 "stream_piece_decode:1in8,decomp_spill_write:once");
    const auto ro = runtime::RuntimeOptions::fromEnv();
    EXPECT_EQ(ro.failpoints,
              "stream_piece_decode:1in8,decomp_spill_write:once");
    EXPECT_FALSE(failpoint::anyArmed());  // fromEnv only validates
    ro.applyFailpoints();
    const auto names = failpoint::armedNames();
    ASSERT_EQ(names.size(), 2u);
    EXPECT_EQ(names[0], "stream_piece_decode");
    EXPECT_EQ(names[1], "decomp_spill_write");
}

TEST_F(FailpointEnv, FromEnvRejectsMalformedSpec)
{
    ScopedEnv fp("SE_FAILPOINTS", "stream_piece_decode:1inx");
    EXPECT_THROW(runtime::RuntimeOptions::fromEnv(),
                 std::invalid_argument);
}

TEST_F(FailpointEnv, CacheDirAcceptedAndEmptyRejected)
{
    {
        ScopedEnv d("SE_CACHE_DIR", "/tmp/se_cache_env_test");
        EXPECT_EQ(runtime::RuntimeOptions::fromEnv().cacheDir,
                  "/tmp/se_cache_env_test");
    }
    ScopedEnv d("SE_CACHE_DIR", "");
    EXPECT_THROW(runtime::RuntimeOptions::fromEnv(),
                 std::invalid_argument);
}

// ----------------------------------------------- model-file injection

constexpr int64_t kC = 2, kH = 4, kW = 4;

std::unique_ptr<nn::Sequential>
makeTinyCnn(uint64_t seed)
{
    Rng rng(seed);
    auto net = std::make_unique<nn::Sequential>();
    net->add<nn::Conv2d>(kC, 4, 3, 1, 1, 1, rng, false);
    net->add<nn::ReLU>();
    net->add<nn::GlobalAvgPool>();
    net->add<nn::Flatten>();
    net->add<nn::Linear>(4, 4, rng, false);
    return net;
}

Tensor
tinyInput(uint64_t seed)
{
    Rng rng(seed);
    // Batch dim of 1: valid both as an engine sample and as a
    // direct reference-net forward input.
    return randn({1, kC, kH, kW}, rng, 0.0f, 1.0f);
}

/** Compress seed's tiny CNN and ship it as a v4 file; returns the
 *  reference net for bit-identity checks. */
std::unique_ptr<nn::Sequential>
shipTinyV4(uint64_t seed, const std::string &path,
           const core::SeOptions &se_opts,
           const core::ApplyOptions &apply_opts)
{
    auto reference = makeTinyCnn(seed);
    auto compressed =
        core::compressToRecords(*reference, se_opts, apply_opts);
    core::quantizeBasisAtCompress(*reference, compressed, se_opts,
                                  apply_opts);
    core::saveModelV4File(path, compressed.bundle());
    return reference;
}

TEST_F(ModelFileInjection, SaveAndLoadFaultsAreTypedAndOneShot)
{
    const std::string path = "/tmp/se_fp_model_io.sexm";
    core::SeOptions se_opts;
    se_opts.vectorThreshold = 0.01;
    core::ApplyOptions apply_opts;
    auto net = makeTinyCnn(7);
    auto compressed =
        core::compressToRecords(*net, se_opts, apply_opts);

    {
        failpoint::ScopedArm arm("model_file_save_io", "once");
        EXPECT_THROW(core::saveModelFile(path, compressed.records),
                     core::ModelFileError);
        // `once` spent: the retry goes through.
        EXPECT_NO_THROW(
            core::saveModelFile(path, compressed.records));
    }
    {
        failpoint::ScopedArm arm("model_file_load_io", "once");
        EXPECT_THROW(core::loadModelFile(path),
                     core::ModelFileError);
        EXPECT_EQ(core::loadModelFile(path).size(),
                  compressed.records.size());
    }
    fs::remove(path);
}

TEST_F(StreamInjection, OpenAndPieceDecodeFaultsAreTyped)
{
    const std::string path = "/tmp/se_fp_stream.sexm";
    core::SeOptions se_opts;
    se_opts.vectorThreshold = 0.01;
    core::ApplyOptions apply_opts;
    shipTinyV4(8, path, se_opts, apply_opts);

    {
        failpoint::ScopedArm arm("stream_open", "once");
        EXPECT_THROW(core::StreamedModel m(path),
                     core::ModelFileError);
    }
    core::StreamedModel m(path);
    ASSERT_GT(m.pieceCount(), 0u);
    {
        failpoint::ScopedArm arm("stream_piece_decode", "once");
        try {
            m.piece(0);
            FAIL() << "armed piece decode did not throw";
        } catch (const core::ModelFileError &e) {
            EXPECT_NE(std::string(e.what()).find("piece 0"),
                      std::string::npos);
        }
        // The fault did not poison the cache: the retry decodes.
        EXPECT_NO_THROW(m.piece(0));
    }
    EXPECT_EQ(m.decodedPieces(), 1u);
    fs::remove(path);
}

TEST_F(StreamInjection, PrefetchNamesTheFailingPiece)
{
    const std::string path = "/tmp/se_fp_prefetch.sexm";
    core::SeOptions se_opts;
    se_opts.vectorThreshold = 0.01;
    core::ApplyOptions apply_opts;
    shipTinyV4(9, path, se_opts, apply_opts);

    core::StreamedModel m(path);
    ASSERT_GE(m.pieceCount(), 2u);
    m.prefetch(0, 1);  // piece 0 cached; the fault lands on piece 1
    failpoint::ScopedArm arm("stream_piece_decode", "once");
    try {
        m.prefetch(0, m.pieceCount());
        FAIL() << "armed prefetch did not throw";
    } catch (const core::ModelFileError &e) {
        EXPECT_NE(std::string(e.what()).find("prefetch: piece 1"),
                  std::string::npos);
    }
    fs::remove(path);
}

TEST_F(StreamInjection, AsyncLaneFaultIsSilentAndConsumerRecovers)
{
    // `stream_prefetch` kills decodes on the background lane only.
    // Contract: the lane swallows the fault (piece reverts to Cold,
    // prefetchErrors counts it) and the consumer path re-decodes on
    // demand — no exception ever crosses to a caller.
    const std::string path = "/tmp/se_fp_lane.sexm";
    core::SeOptions se_opts;
    se_opts.vectorThreshold = 0.01;
    core::ApplyOptions apply_opts;
    shipTinyV4(10, path, se_opts, apply_opts);

    failpoint::ScopedArm arm("stream_prefetch", "once");
    core::StreamLoaderOptions lo;
    lo.prefetchDepth = 2;
    core::StreamedModel m(path, lo);  // ctor queues piece 0
    m.drainPrefetch();
    auto ss = m.streamStats();
    EXPECT_EQ(ss.prefetchErrors, 1u)
        << "the armed lane decode must fail exactly once";

    // `once` spent: every piece still arrives through piece()/lane.
    EXPECT_NO_THROW(m.records());
    m.drainPrefetch();
    ss = m.streamStats();
    EXPECT_EQ(m.decodedPieces(), m.pieceCount());
    EXPECT_EQ(ss.prefetchHits + ss.prefetchMisses, m.pieceCount());
    fs::remove(path);
}

// -------------------------------------------- spill-tier injection

struct SpillDir
{
    explicit SpillDir(const std::string &name)
        : path((fs::temp_directory_path() / name).string())
    {
        fs::remove_all(path);
    }
    ~SpillDir() { fs::remove_all(path); }
    std::string path;
};

size_t
spillFileCount(const std::string &dir)
{
    size_t n = 0;
    for (const auto &e : fs::directory_iterator(dir))
        if (e.path().extension() == ".sedc")
            ++n;
    return n;
}

TEST_F(SpillInjection, WriteFaultNeverFailsTheComputation)
{
    SpillDir dir("se_fp_spill_write");
    runtime::DecompCache cache(
        runtime::DecompCacheOptions{4, dir.path});
    Rng rng(21);
    Tensor w0 = randn({8, 4}, rng, 0.0f, 0.1f);
    Tensor w1 = randn({8, 4}, rng, 0.0f, 0.1f);
    core::SeOptions opts;

    failpoint::ScopedArm arm("decomp_spill_write", "once");
    EXPECT_NO_THROW(cache.getOrCompute(w0, opts));
    EXPECT_EQ(cache.spillFailures(), 1u);
    EXPECT_EQ(cache.spills(), 0u);
    EXPECT_EQ(spillFileCount(dir.path), 0u);

    cache.getOrCompute(w1, opts);  // `once` spent: this one spills
    EXPECT_EQ(cache.spills(), 1u);
    EXPECT_EQ(spillFileCount(dir.path), 1u);
}

TEST_F(SpillInjection, CommitFaultLeavesOnlyATempFileToSweep)
{
    SpillDir dir("se_fp_spill_commit");
    Rng rng(22);
    Tensor w = randn({8, 4}, rng, 0.0f, 0.1f);
    core::SeOptions opts;
    core::SeMatrix computed;
    {
        runtime::DecompCache cache(
            runtime::DecompCacheOptions{4, dir.path});
        // Kill the process between temp-write and rename — the
        // failpoint models the crash without actually dying.
        failpoint::ScopedArm arm("decomp_spill_commit", "once");
        computed = cache.getOrCompute(w, opts);
        EXPECT_EQ(cache.spillFailures(), 1u);
        EXPECT_EQ(spillFileCount(dir.path), 0u);
        size_t temps = 0;
        for (const auto &e : fs::directory_iterator(dir.path))
            if (e.path().string().find(".tmp") != std::string::npos)
                ++temps;
        EXPECT_EQ(temps, 1u);
    }
    // "Restart": the recovery scan at construction sweeps the orphan
    // temp, and the entry is simply a miss to recompute.
    runtime::DecompCache recovered(
        runtime::DecompCacheOptions{4, dir.path});
    EXPECT_EQ(recovered.recoverScan(), 0u);
    for (const auto &e : fs::directory_iterator(dir.path))
        EXPECT_EQ(e.path().string().find(".tmp"), std::string::npos);
    const auto again = recovered.getOrCompute(w, opts);
    EXPECT_EQ(recovered.diskHits(), 0u);
    ASSERT_EQ(again.ce.size(), computed.ce.size());
    EXPECT_EQ(std::memcmp(again.ce.data(), computed.ce.data(),
                          (size_t)again.ce.size() * sizeof(float)),
              0);
}

TEST_F(SpillInjection, ReadFaultIsAMissAndDropsTheEntry)
{
    SpillDir dir("se_fp_spill_read");
    Rng rng(23);
    Tensor w = randn({8, 4}, rng, 0.0f, 0.1f);
    core::SeOptions opts;
    {
        runtime::DecompCache writer(
            runtime::DecompCacheOptions{4, dir.path});
        writer.getOrCompute(w, opts);
        EXPECT_EQ(spillFileCount(dir.path), 1u);
    }
    runtime::DecompCache reader(
        runtime::DecompCacheOptions{4, dir.path});
    failpoint::ScopedArm arm("decomp_spill_read", "once");
    core::SeMatrix out;
    EXPECT_FALSE(reader.lookup(runtime::decompKey(w, opts), out));
    EXPECT_EQ(reader.corruptDropped(), 1u);
    // An unreadable entry is dropped so the next writer re-creates
    // it cleanly.
    EXPECT_EQ(spillFileCount(dir.path), 0u);
}

// ------------------------------------------------- serve injection

TEST_F(ServeInjection, BatchExecFaultFailsFuturesNotTheEngine)
{
    core::SeOptions se_opts;
    se_opts.vectorThreshold = 0.01;
    core::ApplyOptions apply_opts;
    auto net = makeTinyCnn(31);
    auto compressed =
        core::compressToRecords(*net, se_opts, apply_opts);
    auto records =
        std::make_shared<std::vector<core::SeLayerRecord>>(
            std::move(compressed.records));
    serve::ServeOptions opts;
    opts.threads = 0;
    serve::ServeEngine engine(records, [] { return makeTinyCnn(31); },
                              se_opts, apply_opts, opts);

    failpoint::ScopedArm arm("serve_batch_exec", "once");
    auto bad = engine.submit(tinyInput(1));
    engine.drain();
    EXPECT_THROW(bad.get(), failpoint::InjectedFault);
    EXPECT_EQ(engine.stats().failed, 1u);

    // The engine survives its faulted batch and keeps serving.
    auto good = engine.submit(tinyInput(2));
    engine.drain();
    EXPECT_NO_THROW(good.get());
    EXPECT_EQ(engine.stats().requests, 1u);
}

TEST_F(ServeInjection, PipelineStageDelayPerturbsOnlyTheSchedule)
{
    // `pipeline_stage_delay` stalls the form stage between hand-offs
    // — a pure schedule perturbation. Responses must stay
    // bit-identical to an unarmed run and nothing may fail.
    core::SeOptions se_opts;
    se_opts.vectorThreshold = 0.01;
    core::ApplyOptions apply_opts;
    auto net = makeTinyCnn(33);
    auto compressed =
        core::compressToRecords(*net, se_opts, apply_opts);
    auto records =
        std::make_shared<std::vector<core::SeLayerRecord>>(
            std::move(compressed.records));

    const int n = 8;
    std::vector<uint64_t> digests;
    for (const bool armed : {false, true}) {
        serve::ServeOptions opts;
        opts.pipeline = true;
        opts.pipelineDepth = 2;
        opts.threads = 1;
        opts.maxBatch = 3;
        serve::ServeEngine engine(
            records, [] { return makeTinyCnn(33); }, se_opts,
            apply_opts, opts);
        std::unique_ptr<failpoint::ScopedArm> arm;
        if (armed)
            arm = std::make_unique<failpoint::ScopedArm>(
                "pipeline_stage_delay", "1in2");
        std::vector<std::future<Tensor>> futs;
        for (int i = 0; i < n; ++i)
            futs.push_back(engine.submit(tinyInput((uint64_t)i)));
        engine.drain();
        uint64_t digest = kFnvOffsetBasis;
        for (auto &f : futs)
            digest = hashTensor(f.get(), digest);
        digests.push_back(digest);
        EXPECT_EQ(engine.stats().failed, 0u);
        EXPECT_EQ(engine.stats().requests, (uint64_t)n);
    }
    EXPECT_EQ(digests[0], digests[1])
        << "a stage delay must never change responses";
}

TEST_F(ServeInjection, FirstTouchFaultQuarantinesOnlyThatModel)
{
    const std::string path_a = "/tmp/se_fp_quarantine_a.sexm";
    const std::string path_b = "/tmp/se_fp_quarantine_b.sexm";
    core::SeOptions se_opts;
    se_opts.vectorThreshold = 0.01;
    core::ApplyOptions apply_opts;
    auto ref_a = shipTinyV4(41, path_a, se_opts, apply_opts);
    auto ref_b = shipTinyV4(42, path_b, se_opts, apply_opts);

    serve::ModelRegistry reg;
    reg.add("a", serve::makeModelEntry(
                     std::make_shared<core::StreamedModel>(path_a),
                     [] { return makeTinyCnn(41); }, se_opts,
                     apply_opts));
    reg.add("b", serve::makeModelEntry(
                     std::make_shared<core::StreamedModel>(path_b),
                     [] { return makeTinyCnn(42); }, se_opts,
                     apply_opts));
    serve::ServeOptions opts;
    opts.threads = 0;
    serve::ServeFront front(reg, opts);

    {
        failpoint::ScopedArm arm("serve_engine_build", "once");
        EXPECT_THROW(front.submit("a", tinyInput(3)),
                     serve::ModelUnhealthyError);
    }
    EXPECT_EQ(front.health("a"), serve::ModelHealth::Unhealthy);
    EXPECT_FALSE(front.engineBuilt("a"));
    EXPECT_EQ(front.generation("a"), 0u);
    // The fault is confined: submits to 'a' keep refusing with the
    // typed error, while 'b' builds and serves bit-identically.
    EXPECT_THROW(front.submit("a", tinyInput(3)),
                 serve::ModelUnhealthyError);
    auto fut = front.submit("b", tinyInput(4));
    front.drain();
    Tensor got = fut.get();
    Tensor want = ref_b->forward(tinyInput(4), false);
    ASSERT_EQ(got.size(), want.size());
    EXPECT_EQ(std::memcmp(got.data(), want.data(),
                          (size_t)got.size() * sizeof(float)),
              0);
    EXPECT_EQ(front.health("b"), serve::ModelHealth::Healthy);

    // A successful reload recovers the quarantined model.
    front.reloadModel(
        "a", serve::makeModelEntry(
                 std::make_shared<core::StreamedModel>(path_a),
                 [] { return makeTinyCnn(41); }, se_opts, apply_opts));
    EXPECT_EQ(front.health("a"), serve::ModelHealth::Healthy);
    EXPECT_EQ(front.generation("a"), 1u);
    auto healed = front.submit("a", tinyInput(5));
    front.drain();
    Tensor got_a = healed.get();
    Tensor want_a = ref_a->forward(tinyInput(5), false);
    EXPECT_EQ(std::memcmp(got_a.data(), want_a.data(),
                          (size_t)got_a.size() * sizeof(float)),
              0);
    front.stop();
    fs::remove(path_a);
    fs::remove(path_b);
}

TEST_F(ServeInjection, ReloadFaultWithFallbackKeepsPreviousGeneration)
{
    core::SeOptions se_opts;
    se_opts.vectorThreshold = 0.01;
    core::ApplyOptions apply_opts;
    auto net = makeTinyCnn(51);
    auto compressed =
        core::compressToRecords(*net, se_opts, apply_opts);
    serve::ModelRegistry reg;
    reg.add("m", serve::makeModelEntry(compressed.bundle(),
                                       [] { return makeTinyCnn(51); },
                                       se_opts, apply_opts));
    serve::ServeOptions opts;
    opts.threads = 0;
    opts.reloadFallback = true;
    serve::ServeFront front(reg, opts);
    EXPECT_EQ(front.generation("m"), 1u);

    auto next = core::compressToRecords(*makeTinyCnn(52), se_opts,
                                        apply_opts);
    {
        failpoint::ScopedArm arm("serve_engine_build", "once");
        EXPECT_THROW(
            front.reloadModel(
                "m", serve::makeModelEntry(
                         next.bundle(),
                         [] { return makeTinyCnn(52); }, se_opts,
                         apply_opts)),
            failpoint::InjectedFault);
    }
    // Generation 1 absorbed the failed reload and keeps serving.
    EXPECT_EQ(front.health("m"), serve::ModelHealth::Healthy);
    EXPECT_EQ(front.generation("m"), 1u);
    EXPECT_EQ(front.reloadFallbacks("m"), 1u);
    auto fut = front.submit("m", tinyInput(6));
    front.drain();
    Tensor got = fut.get();
    Tensor want = net->forward(tinyInput(6), false);
    EXPECT_EQ(std::memcmp(got.data(), want.data(),
                          (size_t)got.size() * sizeof(float)),
              0);
    front.stop();
}

TEST_F(ServeInjection, ReloadFaultWithoutFallbackQuarantines)
{
    core::SeOptions se_opts;
    se_opts.vectorThreshold = 0.01;
    core::ApplyOptions apply_opts;
    auto net51 = makeTinyCnn(51);
    auto compressed =
        core::compressToRecords(*net51, se_opts, apply_opts);
    serve::ModelRegistry reg;
    reg.add("m", serve::makeModelEntry(compressed.bundle(),
                                       [] { return makeTinyCnn(51); },
                                       se_opts, apply_opts));
    serve::ServeOptions opts;
    opts.threads = 0;
    serve::ServeFront front(reg, opts);

    // Some traffic on generation 1, so retired stats must merge.
    auto pre = front.submit("m", tinyInput(7));
    front.drain();
    pre.get();

    auto net52 = makeTinyCnn(52);
    auto next =
        core::compressToRecords(*net52, se_opts, apply_opts);
    {
        failpoint::ScopedArm arm("serve_engine_build", "once");
        EXPECT_THROW(
            front.reloadModel(
                "m", serve::makeModelEntry(
                         next.bundle(),
                         [] { return makeTinyCnn(52); }, se_opts,
                         apply_opts)),
            failpoint::InjectedFault);
    }
    EXPECT_EQ(front.health("m"), serve::ModelHealth::Unhealthy);
    EXPECT_THROW(front.submit("m", tinyInput(8)),
                 serve::ModelUnhealthyError);
    // Generation 1's counters survived its retirement.
    EXPECT_EQ(front.stats("m").requests, 1u);

    // The next (clean) reload recovers and serves the new bundle.
    front.reloadModel(
        "m", serve::makeModelEntry(next.bundle(),
                                   [] { return makeTinyCnn(52); },
                                   se_opts, apply_opts));
    EXPECT_EQ(front.health("m"), serve::ModelHealth::Healthy);
    EXPECT_EQ(front.generation("m"), 2u);
    auto fut = front.submit("m", tinyInput(9));
    front.drain();
    Tensor got = fut.get();
    Tensor want = net52->forward(tinyInput(9), false);
    EXPECT_EQ(std::memcmp(got.data(), want.data(),
                          (size_t)got.size() * sizeof(float)),
              0);
    EXPECT_EQ(front.stats("m").requests, 2u);
    front.stop();
}

} // namespace
} // namespace se
