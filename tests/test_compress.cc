/**
 * @file
 * Tests for the baseline compression techniques (Fig. 8 comparators).
 */

#include <gtest/gtest.h>

#include <set>

#include "base/random.hh"
#include "compress/baselines.hh"
#include "quant/quant.hh"

namespace se {
namespace {

nn::Sequential
makeNet(uint64_t seed)
{
    Rng rng(seed);
    nn::Sequential net;
    // Built piecemeal because Sequential is move-only in aggregate.
    net.add<nn::Conv2d>(3, 8, 3, 1, 1, 1, rng, false);
    net.add<nn::BatchNorm2d>(8);
    net.add<nn::ReLU>();
    net.add<nn::Conv2d>(8, 16, 3, 1, 1, 1, rng, false);
    net.add<nn::BatchNorm2d>(16);
    net.add<nn::ReLU>();
    net.add<nn::Flatten>();
    return net;
}

TEST(ChannelPruning, PrunesRequestedFraction)
{
    auto net = makeNet(1);
    auto rep = compress::pruneChannelsBnGamma(net, 0.5);
    EXPECT_EQ(rep.technique, "NetworkSlimming");
    // Gammas start at 1.0 uniformly, so the threshold catches about
    // half (ties resolved by <=).
    EXPECT_GT(rep.sparsity, 0.2);
    EXPECT_GT(rep.compressionRate(), 1.0);
}

TEST(ChannelPruning, ZeroRatioPrunesLittle)
{
    auto net = makeNet(2);
    auto rep = compress::pruneChannelsBnGamma(net, 0.0);
    EXPECT_LT(rep.sparsity, 0.2);
}

TEST(FilterPruning, SparsityTracksRatio)
{
    auto net = makeNet(3);
    auto rep = compress::pruneFiltersL1(net, 0.25);
    EXPECT_NEAR(rep.sparsity, 0.25, 0.1);
    auto net2 = makeNet(3);
    auto rep2 = compress::pruneFiltersL1(net2, 0.75);
    EXPECT_GT(rep2.sparsity, rep.sparsity);
}

TEST(FilterPruning, RemovesLowestNormFilters)
{
    Rng rng(4);
    nn::Sequential net;
    auto *conv = net.add<nn::Conv2d>(2, 4, 3, 1, 1, 1, rng, false);
    Tensor &w = conv->weightTensor();
    const int64_t pf = w.size() / 4;
    // Make filter 2 clearly the smallest.
    for (int64_t k = 0; k < pf; ++k)
        w[2 * pf + k] = 1e-6f;
    compress::pruneFiltersL1(net, 0.25);
    for (int64_t k = 0; k < pf; ++k)
        EXPECT_FLOAT_EQ(w[2 * pf + k], 0.0f);
}

TEST(KBitQuant, StorageShrinksByBitRatio)
{
    auto net = makeNet(5);
    auto rep = compress::quantizeKBit(net, 8);
    EXPECT_NEAR(rep.compressionRate(), 4.0, 1e-9);
    auto net2 = makeNet(5);
    auto rep2 = compress::quantizeKBit(net2, 2);
    EXPECT_NEAR(rep2.compressionRate(), 16.0, 1e-9);
}

TEST(KBitQuant, WeightsBecomeGridValues)
{
    auto net = makeNet(6);
    std::vector<nn::Conv2d *> convs;
    net.visit([&](nn::Layer &l) {
        if (auto *c = dynamic_cast<nn::Conv2d *>(&l))
            convs.push_back(c);
    });
    compress::quantizeKBit(net, 4);
    for (auto *c : convs) {
        auto q = quant::FixedPointQuantizer::calibrate(
            c->weightTensor(), 4);
        for (int64_t i = 0; i < c->weightTensor().size(); ++i) {
            const float v = c->weightTensor()[i];
            EXPECT_NEAR(v, q.toFloat(q.toInt(v)), 1e-5f);
        }
    }
}

TEST(Pow2Quant, WeightsBecomePowersOfTwo)
{
    auto net = makeNet(7);
    auto rep = compress::quantizePow2(net, 4);
    EXPECT_NEAR(rep.compressionRate(), 8.0, 1e-9);
    std::vector<nn::Conv2d *> convs;
    net.visit([&](nn::Layer &l) {
        if (auto *c = dynamic_cast<nn::Conv2d *>(&l))
            convs.push_back(c);
    });
    for (auto *c : convs)
        for (int64_t i = 0; i < c->weightTensor().size(); ++i) {
            const float v = std::abs(c->weightTensor()[i]);
            if (v == 0.0f)
                continue;
            int e;
            const float frac = std::frexp(v, &e);
            EXPECT_FLOAT_EQ(frac, 0.5f) << "not a power of two: " << v;
        }
}

TEST(KMeansCluster, WeightsSnapToKCentroids)
{
    auto net = makeNet(9);
    compress::clusterKMeans(net, 8);
    std::vector<nn::Conv2d *> convs;
    net.visit([&](nn::Layer &l) {
        if (auto *c = dynamic_cast<nn::Conv2d *>(&l))
            convs.push_back(c);
    });
    for (auto *c : convs) {
        std::set<float> distinct;
        for (int64_t i = 0; i < c->weightTensor().size(); ++i)
            distinct.insert(c->weightTensor()[i]);
        EXPECT_LE(distinct.size(), 8u);
        EXPECT_GE(distinct.size(), 2u);
    }
}

TEST(KMeansCluster, StorageCountsCodesPlusCodebook)
{
    auto net = makeNet(10);
    auto rep = compress::clusterKMeans(net, 16);
    // 4-bit codes: CR close to 8x, minus codebook overhead.
    EXPECT_GT(rep.compressionRate(), 6.0);
    EXPECT_LT(rep.compressionRate(), 8.0 + 1e-9);
}

TEST(KMeansCluster, MoreClustersLowerError)
{
    auto reference = makeNet(11);
    std::vector<float> orig;
    reference.visit([&](nn::Layer &l) {
        if (auto *c = dynamic_cast<nn::Conv2d *>(&l))
            for (int64_t i = 0; i < c->weightTensor().size(); ++i)
                orig.push_back(c->weightTensor()[i]);
    });
    auto err_for = [&](int k) {
        auto net = makeNet(11);
        compress::clusterKMeans(net, k);
        double err = 0.0;
        size_t at = 0;
        net.visit([&](nn::Layer &l) {
            if (auto *c = dynamic_cast<nn::Conv2d *>(&l))
                for (int64_t i = 0; i < c->weightTensor().size();
                     ++i)
                    err += std::abs(c->weightTensor()[i] -
                                    orig[at++]);
        });
        return err;
    };
    EXPECT_LT(err_for(32), err_for(4));
}

TEST(Baselines, OriginalBitsIdenticalAcrossTechniques)
{
    auto n1 = makeNet(8);
    auto n2 = makeNet(8);
    auto r1 = compress::pruneFiltersL1(n1, 0.5);
    auto r2 = compress::quantizeKBit(n2, 8);
    EXPECT_EQ(r1.originalBits, r2.originalBits);
}

} // namespace
} // namespace se
