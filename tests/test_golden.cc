/**
 * @file
 * Golden-file regression tests: the paper-reproduction benches must
 * stay byte-identical to the pinned outputs in tests/golden/ for a
 * fixed seed. Refactors of core/runtime/accel that change a single
 * digit of Fig. 10 or Table II show up here immediately.
 *
 * SE_BENCH_DIR (the build tree) and SE_GOLDEN_DIR are injected by
 * CMake. The benches are thread-count invariant, but SE_THREADS is
 * pinned anyway so the pinned bytes never depend on the host.
 */

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>

namespace {

std::string
runBench(const std::string &name, const std::string &extra_env = "")
{
    const std::string cmd = "SE_THREADS=2 " + extra_env +
                            (extra_env.empty() ? "" : " ") +
                            SE_BENCH_DIR "/" + name + " 2>/dev/null";
    FILE *pipe = popen(cmd.c_str(), "r");
    if (!pipe) {
        ADD_FAILURE() << "cannot launch " << cmd;
        return {};
    }
    std::string out;
    char buf[4096];
    size_t got;
    while ((got = fread(buf, 1, sizeof(buf), pipe)) > 0)
        out.append(buf, got);
    const int status = pclose(pipe);
    EXPECT_EQ(status, 0) << name << " exited with status " << status;
    return out;
}

std::string
readGolden(const std::string &name)
{
    const std::string path = std::string(SE_GOLDEN_DIR) + "/" + name;
    std::ifstream is(path, std::ios::binary);
    if (!is.good()) {
        ADD_FAILURE() << "missing golden file " << path;
        return {};
    }
    std::ostringstream ss;
    ss << is.rdbuf();
    return ss.str();
}

/** Byte-exact comparison with a line-level report on mismatch. */
void
expectGolden(const std::string &bench, const std::string &golden_file,
             const std::string &extra_env = "")
{
    const std::string got = runBench(bench, extra_env);
    const std::string want = readGolden(golden_file);
    if (got == want)
        return;

    std::istringstream gs(got), ws(want);
    std::string gline, wline;
    size_t line = 0;
    while (true) {
        const bool g_ok = (bool)std::getline(gs, gline);
        const bool w_ok = (bool)std::getline(ws, wline);
        ++line;
        if (!g_ok && !w_ok)
            break;
        if (gline != wline || g_ok != w_ok) {
            ADD_FAILURE()
                << bench << " diverged from " << golden_file
                << " at line " << line << "\n  golden: "
                << (w_ok ? wline : "<eof>")
                << "\n  actual: " << (g_ok ? gline : "<eof>");
            return;
        }
    }
    ADD_FAILURE() << bench << " differs from " << golden_file
                  << " only in trailing bytes";
}

TEST(Golden, Fig10EnergyEfficiency)
{
    expectGolden("bench_fig10", "bench_fig10.txt");
}

TEST(Golden, Table2RetrainedCompressionReduced)
{
    // The reduced protocol (half the epochs, 2 re-train rounds) pins
    // the same code paths in a few seconds where the full protocol
    // costs ~30 s of suite time.
    expectGolden("bench_table2 --reduced", "bench_table2_reduced.txt");
}

TEST(Golden, DISABLED_Table2RetrainedCompressionFull)
{
    // The full paper protocol, excluded from routine ctest for time.
    // Run on demand: ./test_golden --gtest_also_run_disabled_tests
    //   --gtest_filter='*Table2*Full*'
    expectGolden("bench_table2", "bench_table2.txt");
}

TEST(Golden, Fig11DramAccesses)
{
    expectGolden("bench_fig11", "bench_fig11.txt");
}

TEST(Golden, Fig11InvariantUnderConvImpl)
{
    // The kernel lowering must never leak into paper figures: the
    // same pinned bytes under the naive loops and the full GEMM path.
    expectGolden("bench_fig11", "bench_fig11.txt",
                 "SE_CONV_IMPL=naive");
    expectGolden("bench_fig11", "bench_fig11.txt",
                 "SE_CONV_IMPL=gemm");
}

TEST(Golden, Fig12Speedup)
{
    expectGolden("bench_fig12", "bench_fig12.txt");
}

TEST(Golden, Fig13EnergyBreakdown)
{
    expectGolden("bench_fig13", "bench_fig13.txt");
}

TEST(Golden, Fig14SparsityRatios)
{
    expectGolden("bench_fig14", "bench_fig14.txt");
}

TEST(Golden, Fig15CompactModelDesign)
{
    expectGolden("bench_fig15", "bench_fig15.txt");
}

TEST(Golden, Table3CompactModels)
{
    expectGolden("bench_table3", "bench_table3.txt");
}

} // namespace
