/**
 * @file
 * Tests of the software-hardware interface (Fig. 7): the parser's
 * shape inference against live forward passes, and the compiler's
 * tiling plans and instruction streams.
 */

#include <gtest/gtest.h>

#include "base/random.hh"
#include "compiler/compiler.hh"
#include "compiler/parser.hh"
#include "models/zoo.hh"

namespace se {
namespace {

using compiler::compileNetwork;
using compiler::Dataflow;
using compiler::Opcode;
using compiler::parseNetwork;
using compiler::planLayer;

TEST(Parser, SimpleConvNetShapes)
{
    Rng rng(1);
    nn::Sequential net;
    net.add<nn::Conv2d>(3, 8, 3, 1, 1, 1, rng, false);
    net.add<nn::BatchNorm2d>(8);
    net.add<nn::ReLU>();
    net.add<nn::MaxPool2d>(2, 2);
    net.add<nn::Conv2d>(8, 16, 3, 2, 1, 1, rng, false);
    net.add<nn::Flatten>();
    net.add<nn::Linear>(16 * 4 * 4, 10, rng);

    auto w = parseNetwork(net, 3, 16, 16);
    ASSERT_EQ(w.layers.size(), 3u);
    EXPECT_EQ(w.layers[0].kind, sim::LayerKind::Conv);
    EXPECT_EQ(w.layers[0].h, 16);
    EXPECT_EQ(w.layers[0].outH(), 16);
    EXPECT_EQ(w.layers[1].h, 8);   // after 2x2 pool
    EXPECT_EQ(w.layers[1].outH(), 4);  // stride 2
    EXPECT_EQ(w.layers[2].kind, sim::LayerKind::FullyConnected);
    EXPECT_EQ(w.layers[2].c, 16 * 4 * 4);
    EXPECT_EQ(w.layers[2].m, 10);
}

TEST(Parser, DepthwiseDetection)
{
    Rng rng(2);
    nn::Sequential net;
    net.add<nn::Conv2d>(8, 8, 3, 1, 1, 8, rng, false);  // depthwise
    net.add<nn::Conv2d>(8, 16, 1, 1, 0, 1, rng, false); // pointwise
    auto w = parseNetwork(net, 8, 10, 10);
    ASSERT_EQ(w.layers.size(), 2u);
    EXPECT_EQ(w.layers[0].kind, sim::LayerKind::DepthwiseConv);
    EXPECT_EQ(w.layers[1].kind, sim::LayerKind::Conv);
    EXPECT_EQ(w.layers[1].r, 1);
}

TEST(Parser, ParsedMacsMatchLiveForwardShapes)
{
    // Forward a real batch and verify the parser's output geometry
    // against the live tensors, for every zoo model.
    for (auto id : {models::ModelId::VGG19, models::ModelId::ResNet50,
                    models::ModelId::MobileNetV2,
                    models::ModelId::EfficientNetB0}) {
        models::SimConfig cfg;
        cfg.inHeight = cfg.inWidth = 16;
        auto net = models::buildSim(id, cfg);
        auto w = parseNetwork(*net, cfg.inChannels, cfg.inHeight,
                              cfg.inWidth, models::modelName(id));
        EXPECT_GT(w.layers.size(), 3u) << models::modelName(id);
        EXPECT_GT(w.totalMacs(), 0) << models::modelName(id);
        // The live model must actually run with these dims.
        Rng rng(3);
        Tensor x = randn({1, cfg.inChannels, cfg.inHeight,
                          cfg.inWidth}, rng);
        Tensor y = net->forward(x, false);
        EXPECT_EQ(y.dim(1), cfg.numClasses) << models::modelName(id);
    }
}

TEST(Parser, SqueezeExciteRecorded)
{
    models::SimConfig cfg;
    cfg.inHeight = cfg.inWidth = 16;
    auto net = models::buildSim(models::ModelId::EfficientNetB0, cfg);
    auto w = parseNetwork(*net, cfg.inChannels, cfg.inHeight,
                          cfg.inWidth);
    int se_layers = 0;
    for (const auto &l : w.layers)
        se_layers += l.kind == sim::LayerKind::SqueezeExcite;
    EXPECT_GT(se_layers, 0);
}

TEST(Parser, AnnotateFromReport)
{
    Rng rng(4);
    nn::Sequential net;
    net.add<nn::Conv2d>(3, 8, 3, 1, 1, 1, rng, false);
    net.add<nn::Conv2d>(8, 8, 3, 1, 1, 1, rng, false);
    auto w = parseNetwork(net, 3, 8, 8);
    compiler::annotateFromReport(w, {0.5, 0.7}, {0.6, 0.8}, 0.4, 1.3);
    EXPECT_DOUBLE_EQ(w.layers[0].weightVectorSparsity, 0.5);
    EXPECT_DOUBLE_EQ(w.layers[1].weightElementSparsity, 0.8);
    EXPECT_DOUBLE_EQ(w.layers[1].actValueSparsity, 0.4);
}

TEST(CompilerTest, ConvPlanDims)
{
    sim::LayerShape l;
    l.kind = sim::LayerKind::Conv;
    l.c = 128;
    l.m = 256;
    l.h = l.w = 28;
    l.r = l.s = 3;
    l.pad = 1;
    auto cfg = sim::ArrayConfig::bitSerialDefault();
    auto plan = planLayer(l, cfg);
    EXPECT_EQ(plan.dataflow, Dataflow::RowStationary2d);
    EXPECT_EQ(plan.mTiles, 4);   // 256 / 64
    EXPECT_EQ(plan.cTiles, 8);   // 128 / 16
    EXPECT_EQ(plan.fTiles, 4);   // 28 / 8 rounded up
    EXPECT_GT(plan.utilization, 0.9);
}

TEST(CompilerTest, DepthwiseUsesRemappedDataflow)
{
    sim::LayerShape l;
    l.kind = sim::LayerKind::DepthwiseConv;
    l.c = l.m = 192;
    l.h = l.w = 14;
    l.r = l.s = 3;
    l.pad = 1;
    auto plan = planLayer(l, sim::ArrayConfig::bitSerialDefault());
    EXPECT_EQ(plan.dataflow, Dataflow::DepthwiseRemapped);
    // Utilization bounded by R / dimC.
    EXPECT_LE(plan.utilization, 3.0 / 16.0 + 1e-9);
}

TEST(CompilerTest, FcUsesClusteredDataflow)
{
    sim::LayerShape l;
    l.kind = sim::LayerKind::FullyConnected;
    l.c = 512;
    l.m = 10;
    auto plan = planLayer(l, sim::ArrayConfig::bitSerialDefault());
    EXPECT_EQ(plan.dataflow, Dataflow::FcClustered);
    EXPECT_EQ(plan.mTiles, 1);
}

TEST(CompilerTest, InputGbFitDetection)
{
    sim::LayerShape small, large;
    small.kind = large.kind = sim::LayerKind::Conv;
    small.c = 16;
    small.h = small.w = 32;  // 16 KB
    large.c = 64;
    large.h = large.w = 224;  // ~3.2 MB
    small.m = large.m = 64;
    small.r = small.s = large.r = large.s = 3;
    auto cfg = sim::ArrayConfig::bitSerialDefault();
    EXPECT_TRUE(planLayer(small, cfg).inputFitsGb);
    EXPECT_FALSE(planLayer(large, cfg).inputFitsGb);
}

TEST(CompilerTest, InstructionStreamStructure)
{
    sim::Workload w;
    sim::LayerShape l;
    l.kind = sim::LayerKind::Conv;
    l.c = 32;
    l.m = 128;  // 2 m-tiles at dimM = 64
    l.h = l.w = 14;
    l.r = l.s = 3;
    l.pad = 1;
    w.layers.push_back(l);
    auto cfg = sim::ArrayConfig::bitSerialDefault();
    auto prog = compileNetwork(w, cfg);

    ASSERT_EQ(prog.plans.size(), 1u);
    EXPECT_EQ(prog.countOps(Opcode::ConfigLayer), 1);
    EXPECT_EQ(prog.countOps(Opcode::LoadCoeff), prog.plans[0].mTiles);
    EXPECT_EQ(prog.countOps(Opcode::LoadBasis), prog.plans[0].mTiles);
    EXPECT_EQ(prog.countOps(Opcode::Compute),
              prog.plans[0].mTiles * prog.plans[0].cTiles);
    EXPECT_EQ(prog.countOps(Opcode::StoreOutput),
              prog.plans[0].mTiles);
    // Instructions appear in execution order: CONFIG first.
    EXPECT_EQ(prog.instructions.front().op, Opcode::ConfigLayer);
}

TEST(CompilerTest, WholeModelCompiles)
{
    auto w = models::paperShapes(models::ModelId::ResNet50);
    auto prog =
        compileNetwork(w, sim::ArrayConfig::bitSerialDefault());
    EXPECT_EQ(prog.plans.size(), w.layers.size());
    EXPECT_GT(prog.instructions.size(), w.layers.size() * 4);
    // Disassembly renders without crashing and mentions an opcode.
    auto text = compiler::disassemble(prog, 16);
    EXPECT_NE(text.find("CONFIG"), std::string::npos);
}

TEST(CompilerTest, ParsedModelRoundTripsThroughCompiler)
{
    models::SimConfig cfg;
    cfg.inHeight = cfg.inWidth = 16;
    auto net = models::buildSim(models::ModelId::VGG19, cfg);
    auto w = parseNetwork(*net, cfg.inChannels, cfg.inHeight,
                          cfg.inWidth);
    auto prog =
        compileNetwork(w, sim::ArrayConfig::bitSerialDefault());
    EXPECT_EQ(prog.plans.size(), w.layers.size());
    for (const auto &plan : prog.plans) {
        EXPECT_GT(plan.utilization, 0.0);
        EXPECT_LE(plan.utilization, 1.0);
    }
}

} // namespace
} // namespace se
