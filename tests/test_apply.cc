/**
 * @file
 * Tests of network-level SmartExchange application: reshaping rules for
 * CONV/FC/1x1 layers, channel pruning via BN gamma, storage accounting,
 * and in-place weight replacement.
 */

#include <gtest/gtest.h>

#include "base/random.hh"
#include "core/apply.hh"

namespace se {
namespace {

using core::ApplyOptions;
using core::applySmartExchange;
using core::decomposeConvWeight;
using core::decomposeFcWeight;
using core::SeOptions;

TEST(ConvReshape, OnePiecePerFilterWithoutSlicing)
{
    Rng rng(1);
    Tensor w = randn({4, 8, 3, 3}, rng, 0.0f, 0.1f);
    auto pieces = decomposeConvWeight(w, SeOptions{}, ApplyOptions{});
    EXPECT_EQ(pieces.size(), 4u);
    for (const auto &p : pieces) {
        EXPECT_EQ(p.ce.dim(0), 8 * 3);  // C * R rows
        EXPECT_EQ(p.ce.dim(1), 3);      // S columns
        EXPECT_EQ(p.basis.dim(0), 3);
        EXPECT_EQ(p.basis.dim(1), 3);
    }
}

TEST(ConvReshape, SlicingSplitsTallFilters)
{
    Rng rng(2);
    Tensor w = randn({2, 32, 3, 3}, rng, 0.0f, 0.1f);
    ApplyOptions ao;
    ao.maxSliceRows = 24;  // 96 rows per filter -> 4 slices
    auto pieces = decomposeConvWeight(w, SeOptions{}, ao);
    EXPECT_EQ(pieces.size(), 2u * 4u);
}

TEST(FcReshape, RowsBecomeGroupedMatrices)
{
    Rng rng(3);
    Tensor w = randn({5, 32}, rng, 0.0f, 0.1f);
    ApplyOptions ao;
    ao.fcGroupSize = 4;
    auto pieces = decomposeFcWeight(w, SeOptions{}, ao);
    EXPECT_EQ(pieces.size(), 5u);
    EXPECT_EQ(pieces[0].ce.dim(0), 8);  // 32/4
    EXPECT_EQ(pieces[0].ce.dim(1), 4);
}

TEST(FcReshape, PadsWhenNotDivisible)
{
    Rng rng(4);
    Tensor w = randn({2, 30}, rng, 0.0f, 0.1f);  // 30 not /4
    ApplyOptions ao;
    ao.fcGroupSize = 4;
    auto pieces = decomposeFcWeight(w, SeOptions{}, ao);
    EXPECT_EQ(pieces[0].ce.dim(0), 8);  // ceil(30/4)
}

TEST(Apply, ReplacesWeightsWithReconstruction)
{
    Rng rng(5);
    nn::Sequential net;
    auto *conv = net.add<nn::Conv2d>(4, 6, 3, 1, 1, 1, rng, false);
    Tensor before = conv->weightTensor();

    SeOptions opts;
    opts.vectorThreshold = 0.01;
    auto report = applySmartExchange(net, opts, ApplyOptions{});

    // Weights changed (projection happened) but stayed close.
    const Tensor &after = conv->weightTensor();
    double diff = 0.0, norm = 0.0;
    for (int64_t i = 0; i < before.size(); ++i) {
        diff += std::abs(before[i] - after[i]);
        norm += std::abs(before[i]);
    }
    EXPECT_GT(diff, 0.0);
    EXPECT_LT(diff / norm, 0.8);
    ASSERT_EQ(report.layers.size(), 1u);
    EXPECT_TRUE(report.layers[0].decomposed);
    EXPECT_EQ(report.layers[0].pieces, 6);
}

TEST(Apply, CompressionRateBeatsEightToOne)
{
    // 4-bit coefficients + sparsity must beat FP32 by well over 8x.
    Rng rng(6);
    nn::Sequential net;
    net.add<nn::Conv2d>(8, 16, 3, 1, 1, 1, rng, false);
    net.add<nn::Conv2d>(16, 16, 3, 1, 1, 1, rng, false);
    SeOptions opts;
    opts.minVectorSparsity = 0.5;
    auto report = applySmartExchange(net, opts, ApplyOptions{});
    EXPECT_GT(report.compressionRate(), 8.0);
    EXPECT_GT(report.overallVectorSparsity(), 0.45);
}

TEST(Apply, ChannelPruningZerosFiltersAndGamma)
{
    Rng rng(7);
    nn::Sequential net;
    auto *conv = net.add<nn::Conv2d>(4, 8, 3, 1, 1, 1, rng, false);
    auto *bn = net.add<nn::BatchNorm2d>(8);
    // Three small gammas.
    bn->gammaTensor()[1] = 0.001f;
    bn->gammaTensor()[4] = -0.002f;
    bn->gammaTensor()[6] = 0.0005f;

    SeOptions opts;
    ApplyOptions ao;
    ao.channelGammaThreshold = 0.01;
    auto report = applySmartExchange(net, opts, ao);

    EXPECT_FLOAT_EQ(bn->gammaTensor()[1], 0.0f);
    const Tensor &w = conv->weightTensor();
    const int64_t pf = w.size() / w.dim(0);
    for (int64_t k = 0; k < pf; ++k) {
        EXPECT_FLOAT_EQ(w[1 * pf + k], 0.0f);
        EXPECT_FLOAT_EQ(w[4 * pf + k], 0.0f);
        EXPECT_FLOAT_EQ(w[6 * pf + k], 0.0f);
    }
    EXPECT_NEAR(report.layers[0].channelSparsity, 3.0 / 8.0, 1e-9);
}

TEST(Apply, OneByOneConvUsesFcRule)
{
    Rng rng(8);
    nn::Sequential net;
    net.add<nn::Conv2d>(32, 4, 1, 1, 0, 1, rng, false);
    SeOptions opts;
    auto report = applySmartExchange(net, opts, ApplyOptions{});
    ASSERT_EQ(report.layers.size(), 1u);
    EXPECT_TRUE(report.layers[0].decomposed);
    // FC rule: one piece per output channel (row).
    EXPECT_EQ(report.layers[0].pieces, 4);
}

TEST(Apply, TinyLayersAreSkipped)
{
    Rng rng(9);
    nn::Sequential net;
    net.add<nn::Conv2d>(1, 1, 3, 1, 1, 1, rng, false);  // 9 weights
    auto report = applySmartExchange(net, SeOptions{}, ApplyOptions{});
    ASSERT_EQ(report.layers.size(), 1u);
    EXPECT_FALSE(report.layers[0].decomposed);
}

TEST(Apply, LinearLayerDecomposed)
{
    Rng rng(10);
    nn::Sequential net;
    net.add<nn::Linear>(64, 10, rng);
    SeOptions opts;
    auto report = applySmartExchange(net, opts, ApplyOptions{});
    ASSERT_EQ(report.layers.size(), 1u);
    EXPECT_TRUE(report.layers[0].decomposed);
    EXPECT_GT(report.compressionRate(), 4.0);
}

TEST(Apply, ReportTotalsAreConsistent)
{
    Rng rng(11);
    nn::Sequential net;
    net.add<nn::Conv2d>(4, 8, 3, 1, 1, 1, rng, false);
    net.add<nn::Linear>(32, 10, rng);
    auto report = applySmartExchange(net, SeOptions{}, ApplyOptions{});
    int64_t ce = 0, basis = 0;
    for (const auto &l : report.layers) {
        ce += l.ceBits;
        basis += l.basisBits;
    }
    EXPECT_EQ(ce, report.ceBitsTotal());
    EXPECT_EQ(basis, report.basisBitsTotal());
    EXPECT_EQ(report.compressedBits(), ce + basis);
    EXPECT_GT(report.paramMB(), 0.0);
    EXPECT_NEAR(report.paramMB(),
                report.ceMB() + report.basisMB(), 1e-9);
}

TEST(Apply, HigherThresholdGivesSmallerModel)
{
    Rng rng(12);
    nn::Sequential net1, net2;
    net1.add<nn::Conv2d>(8, 8, 3, 1, 1, 1, rng, false);
    Rng rng2(12);
    net2.add<nn::Conv2d>(8, 8, 3, 1, 1, 1, rng2, false);

    SeOptions loose, tight;
    loose.vectorThreshold = 1e-4;
    tight.vectorThreshold = 0.05;
    auto rep1 = applySmartExchange(net1, loose, ApplyOptions{});
    auto rep2 = applySmartExchange(net2, tight, ApplyOptions{});
    EXPECT_GE(rep2.compressionRate(), rep1.compressionRate());
}

} // namespace
} // namespace se
