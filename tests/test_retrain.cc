/**
 * @file
 * Tests of the re-training loop and the refineOnSupport extension:
 * structure preservation across rounds, compression stability, and
 * the masked-refit quality property.
 */

#include <gtest/gtest.h>

#include "base/random.hh"
#include "core/trainer.hh"
#include "models/zoo.hh"

namespace se {
namespace {

data::ClassificationTask
tinyTask(uint64_t seed = 5)
{
    data::ClassSetConfig cfg;
    cfg.numClasses = 4;
    cfg.height = cfg.width = 8;
    cfg.batchSize = 8;
    cfg.trainBatches = 8;
    cfg.testBatches = 3;
    cfg.noise = 0.4f;
    cfg.seed = seed;
    return data::makeClassification(cfg);
}

std::unique_ptr<nn::Sequential>
tinyNet()
{
    models::SimConfig cfg;
    cfg.numClasses = 4;
    cfg.inHeight = cfg.inWidth = 8;
    cfg.baseWidth = 6;
    return models::buildSim(models::ModelId::VGG11, cfg);
}

TEST(Retrain, CompressionRateStableAcrossRounds)
{
    auto task = tinyTask();
    auto net = tinyNet();
    core::TrainConfig tc;
    tc.epochs = 4;
    core::trainClassifier(*net, task, tc);

    core::SeOptions opts;
    opts.minVectorSparsity = 0.4;
    auto first =
        core::applySmartExchange(*net, opts, core::ApplyOptions{});

    core::SeRetrainConfig rc;
    rc.rounds = 3;
    auto res = core::retrainWithSmartExchange(
        *net, task, opts, core::ApplyOptions{}, rc);

    // The projection re-establishes the same structure every round,
    // so the compression rate stays within a tight band.
    EXPECT_NEAR(res.report.compressionRate(),
                first.compressionRate(),
                0.3 * first.compressionRate());
    EXPECT_GE(res.report.overallVectorSparsity(), 0.35);
}

TEST(Retrain, ReportsAllThreeAccuracies)
{
    auto task = tinyTask();
    auto net = tinyNet();
    core::TrainConfig tc;
    tc.epochs = 5;
    core::trainClassifier(*net, task, tc);

    core::SeOptions opts;
    core::SeRetrainConfig rc;
    rc.rounds = 2;
    auto res = core::retrainWithSmartExchange(
        *net, task, opts, core::ApplyOptions{}, rc);
    EXPECT_GT(res.accBaseline, 0.5);
    EXPECT_GE(res.accPostProcess, 0.0);
    EXPECT_GE(res.accRetrained, res.accPostProcess - 0.2);
}

TEST(RefineOnSupport, NeverMuchWorseUsuallyBetter)
{
    // With refineOnSupport the final reconstruction error is at most
    // marginally worse, and typically better, across random weights.
    Rng rng(7);
    int better = 0;
    const int trials = 12;
    for (int t = 0; t < trials; ++t) {
        Tensor w = randn({60, 3}, rng, 0.0f, 0.1f);
        core::SeOptions plain, refined;
        plain.minVectorSparsity = refined.minVectorSparsity = 0.4;
        refined.refineOnSupport = true;
        auto a = core::decomposeMatrix(w, plain);
        auto b = core::decomposeMatrix(w, refined);
        EXPECT_LT(b.reconRelError, a.reconRelError + 0.1);
        better += b.reconRelError <= a.reconRelError + 1e-9;
    }
    EXPECT_GE(better, trials / 2);
}

TEST(RefineOnSupport, PreservesSparsityStructure)
{
    Rng rng(8);
    Tensor w = randn({80, 3}, rng, 0.0f, 0.1f);
    core::SeOptions opts;
    opts.minVectorSparsity = 0.5;
    opts.refineOnSupport = true;
    auto sem = core::decomposeMatrix(w, opts);
    EXPECT_GE(sem.vectorSparsity(), 0.5 - 1e-9);
    for (int64_t i = 0; i < sem.ce.size(); ++i)
        EXPECT_TRUE(sem.alphabet.contains(sem.ce[i]));
}

TEST(Retrain, SegmentationLoopAlsoRecovers)
{
    data::SegSetConfig scfg;
    scfg.height = scfg.width = 12;
    scfg.batchSize = 4;
    scfg.trainBatches = 5;
    scfg.testBatches = 2;
    auto task = data::makeSegmentation(scfg);

    models::SimConfig mcfg;
    mcfg.numClasses = scfg.numClasses;
    mcfg.inHeight = mcfg.inWidth = 12;
    mcfg.baseWidth = 6;
    auto net = models::buildSim(models::ModelId::DeepLabV3Plus, mcfg);
    core::TrainConfig tc;
    tc.epochs = 4;
    tc.lr = 0.1f;
    const double base = core::trainSegmenter(*net, task, tc);

    core::SeOptions opts;
    opts.minVectorSparsity = 0.3;
    core::applySmartExchange(*net, opts, core::ApplyOptions{});
    core::TrainConfig ft;
    ft.epochs = 2;
    ft.lr = 0.05f;
    core::trainSegmenter(*net, task, ft);
    core::applySmartExchange(*net, opts, core::ApplyOptions{});
    const double after = core::evaluateSegmenter(*net, task.test);
    EXPECT_GT(after, base - 0.3);
}

} // namespace
} // namespace se
