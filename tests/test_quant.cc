/**
 * @file
 * Unit and property tests for the quantization primitives: power-of-2
 * projection, fixed-point quantization, Booth encoding and the Fig. 4
 * bit-level sparsity statistics.
 */

#include <gtest/gtest.h>

#include <cmath>

#include "base/random.hh"
#include "quant/quant.hh"

namespace se {
namespace {

using quant::boothDigits;
using quant::boothNonzeroDigits;
using quant::choosePow2Alphabet;
using quant::essentialBits;
using quant::FixedPointQuantizer;
using quant::measureBitSparsity;
using quant::Pow2Alphabet;
using quant::projectPow2;

TEST(Pow2Alphabet, ProjectsExactPowers)
{
    Pow2Alphabet a{0, 7};  // exponents -6..0
    EXPECT_FLOAT_EQ(a.project(1.0f), 1.0f);
    EXPECT_FLOAT_EQ(a.project(0.5f), 0.5f);
    EXPECT_FLOAT_EQ(a.project(-0.25f), -0.25f);
    EXPECT_FLOAT_EQ(a.project(0.0f), 0.0f);
}

TEST(Pow2Alphabet, RoundsToNearestLinear)
{
    Pow2Alphabet a{2, 7};
    EXPECT_FLOAT_EQ(a.project(2.9f), 2.0f);
    EXPECT_FLOAT_EQ(a.project(3.1f), 4.0f);
    EXPECT_FLOAT_EQ(a.project(-1.4f), -1.0f);
}

TEST(Pow2Alphabet, ClampsToRange)
{
    Pow2Alphabet a{0, 4};  // exponents -3..0
    EXPECT_FLOAT_EQ(a.project(8.0f), 1.0f);     // clamp to 2^0
    // Below half of the smallest power collapses to zero.
    EXPECT_FLOAT_EQ(a.project(0.01f), 0.0f);
    EXPECT_FLOAT_EQ(a.project(0.09f), 0.125f);  // just above half
}

TEST(Pow2Alphabet, ContainsMembershipIsExact)
{
    Pow2Alphabet a{0, 4};
    EXPECT_TRUE(a.contains(0.0f));
    EXPECT_TRUE(a.contains(1.0f));
    EXPECT_TRUE(a.contains(-0.125f));
    EXPECT_FALSE(a.contains(0.3f));
    EXPECT_FALSE(a.contains(2.0f));   // exponent out of range
    EXPECT_FALSE(a.contains(0.0625f));
}

TEST(Pow2Alphabet, ProjectionIsIdempotent)
{
    Rng rng(1);
    Tensor t = randn({200}, rng);
    auto a = choosePow2Alphabet(t, 4);
    Tensor once = projectPow2(t, a);
    Tensor twice = projectPow2(once, a);
    for (int64_t i = 0; i < t.size(); ++i)
        EXPECT_FLOAT_EQ(once[i], twice[i]);
}

TEST(Pow2Alphabet, AllProjectedValuesAreMembers)
{
    Rng rng(2);
    Tensor t = randn({500}, rng, 0.0f, 3.0f);
    auto a = choosePow2Alphabet(t, 4);
    Tensor p = projectPow2(t, a);
    for (int64_t i = 0; i < p.size(); ++i)
        EXPECT_TRUE(a.contains(p[i])) << "value " << p[i];
}

TEST(Pow2Alphabet, FourBitBudgetGivesSevenLevels)
{
    Tensor t({4}, std::vector<float>{1.0f, 0.5f, -0.25f, 2.0f});
    auto a = choosePow2Alphabet(t, 4);
    EXPECT_EQ(a.numLevels, 7);
    EXPECT_EQ(a.expMax, 1);
    EXPECT_EQ(a.expMin(), -5);
}

TEST(FixedPoint, RoundTripWithinHalfLsb)
{
    Rng rng(3);
    Tensor t = randn({300}, rng);
    auto q = FixedPointQuantizer::calibrate(t, 8);
    for (int64_t i = 0; i < t.size(); ++i) {
        const float back = q.toFloat(q.toInt(t[i]));
        EXPECT_NEAR(back, t[i], q.scale * 0.5f + 1e-6f);
    }
}

TEST(FixedPoint, SaturatesAtRangeEnds)
{
    Tensor t({2}, std::vector<float>{1.0f, -1.0f});
    auto q = FixedPointQuantizer::calibrate(t, 8);
    EXPECT_EQ(q.toInt(10.0f), 127);
    EXPECT_EQ(q.toInt(-10.0f), -127);
}

TEST(FixedPoint, ZeroTensorGetsUnitScale)
{
    Tensor t({4}, 0.0f);
    auto q = FixedPointQuantizer::calibrate(t, 8);
    EXPECT_FLOAT_EQ(q.scale, 1.0f);
    EXPECT_EQ(q.toInt(0.0f), 0);
}

TEST(Booth, ZeroHasNoDigits)
{
    EXPECT_EQ(boothNonzeroDigits(0, 8), 0);
}

TEST(Booth, DigitsReconstructValue)
{
    // Radix-4 digits d_i reconstruct v = sum d_i * 4^i.
    for (int v = -128; v <= 127; ++v) {
        auto digits = boothDigits(v, 8);
        int64_t acc = 0, base = 1;
        for (int d : digits) {
            acc += (int64_t)d * base;
            base *= 4;
        }
        EXPECT_EQ(acc, v) << "value " << v;
    }
}

TEST(Booth, DigitCountBounds)
{
    for (int v = -128; v <= 127; ++v) {
        const int n = boothNonzeroDigits(v, 8);
        EXPECT_GE(n, 0);
        EXPECT_LE(n, 4);
    }
}

TEST(Booth, PowersOfTwoNeedOneDigit)
{
    for (int p = 0; p <= 6; ++p)
        EXPECT_LE(boothNonzeroDigits(1 << p, 8), 2)
            << "2^" << p;
    EXPECT_EQ(boothNonzeroDigits(1, 8), 1);
    EXPECT_EQ(boothNonzeroDigits(4, 8), 1);
    EXPECT_EQ(boothNonzeroDigits(16, 8), 1);
}

TEST(Booth, RunsOfOnesAreCheap)
{
    // 0b01111111 = 127 = 128 - 1: two Booth digits vs seven plain bits.
    EXPECT_EQ(essentialBits(127, 8), 7);
    EXPECT_LE(boothNonzeroDigits(127, 8), 2);
}

TEST(EssentialBits, MatchesPopcountOfMagnitude)
{
    EXPECT_EQ(essentialBits(0, 8), 0);
    EXPECT_EQ(essentialBits(5, 8), 2);
    EXPECT_EQ(essentialBits(-5, 8), 2);
    EXPECT_EQ(essentialBits(127, 8), 7);
}

TEST(BitSparsity, AllZerosTensor)
{
    Tensor t({64}, 0.0f);
    auto s = measureBitSparsity(t, 8);
    EXPECT_DOUBLE_EQ(s.valueSparsity, 1.0);
    EXPECT_DOUBLE_EQ(s.plainBitSparsity, 1.0);
    EXPECT_DOUBLE_EQ(s.boothBitSparsity, 1.0);
}

TEST(BitSparsity, ReluLikeActivationsShowHighBitSparsity)
{
    // Half zeros + small positive values: bit sparsity must be high,
    // and Booth digit sparsity lower than plain bit sparsity (fewer
    // total digit slots), reproducing the Fig. 4 relationship.
    Rng rng(4);
    Tensor t({4000});
    for (int64_t i = 0; i < t.size(); ++i) {
        const float v = rng.gaussian(0.0f, 0.3f);
        t[i] = v > 0 ? v : 0.0f;
    }
    auto s = measureBitSparsity(t, 8);
    EXPECT_GT(s.plainBitSparsity, 0.6);
    EXPECT_GT(s.boothBitSparsity, 0.4);
    EXPECT_LT(s.boothBitSparsity, s.plainBitSparsity);
    EXPECT_GT(s.valueSparsity, 0.3);
}

TEST(BitSparsity, AveragesConsistentWithSparsities)
{
    Rng rng(5);
    Tensor t = randn({1000}, rng);
    auto s = measureBitSparsity(t, 8);
    EXPECT_NEAR(s.avgEssentialBits, (1.0 - s.plainBitSparsity) * 8.0,
                1e-9);
    EXPECT_NEAR(s.avgBoothDigits, (1.0 - s.boothBitSparsity) * 4.0,
                1e-9);
}

/** Parameterized sweep over bit widths. */
class FixedPointSweep : public ::testing::TestWithParam<int>
{
};

TEST_P(FixedPointSweep, QuantizationErrorShrinksWithBits)
{
    const int bits = GetParam();
    Rng rng(6);
    Tensor t = randn({2000}, rng);
    auto q = FixedPointQuantizer::calibrate(t, bits);
    auto q2 = FixedPointQuantizer::calibrate(t, bits + 2);
    double err = 0.0, err2 = 0.0;
    for (int64_t i = 0; i < t.size(); ++i) {
        err += std::abs(q.toFloat(q.toInt(t[i])) - t[i]);
        err2 += std::abs(q2.toFloat(q2.toInt(t[i])) - t[i]);
    }
    EXPECT_LT(err2, err);
}

INSTANTIATE_TEST_SUITE_P(Bits, FixedPointSweep,
                         ::testing::Values(2, 3, 4, 6, 8, 10));

} // namespace
} // namespace se
