/**
 * @file
 * Tests of the SmartExchange model-file format: exact round-trips of
 * coefficients (via their power-of-2 codes), basis matrices and
 * metadata; bundle save/load; property/fuzz coverage (random
 * matrices, truncated prefixes, single-bit corruption — every damaged
 * stream must raise ModelFileError, never crash or silently
 * mis-load); and the nn <-> record glue (compressToRecords /
 * installLayerRecords).
 *
 * The v3 wall mirrors the v2 one at the packed 4-bit width: exact
 * round trips with zero-row elision (including odd code counts),
 * dense-residual round trips of channel-pruned models with no
 * out-of-band restore, truncation/bit-flip rejection, and — behind a
 * checksum-fixup helper — the structural validation the checksum
 * alone cannot exercise (0x80-style invalid nibbles, codes outside
 * the alphabet, dirty padding, mask/count disagreement).
 *
 * The v4 wall extends the same discipline to the streaming format:
 * adaptive-width round trips (all-zero columns, single-row pieces,
 * 1/2/3-bit alphabets), the quantize-at-compress contract, full
 * truncation/bit-flip rejection across header + meta + directory +
 * payloads + padding, structural corruption behind BOTH fixed-up
 * checksums (piece and meta), error messages that name the offending
 * record/piece/offset, and the StreamedModel lazy loader (O(meta)
 * open, decode-on-touch, prefetch, corrupt-piece containment).
 */

#include <gtest/gtest.h>

#include <cmath>
#include <cstring>
#include <fstream>
#include <functional>
#include <sstream>
#include <utility>

#include "base/hash.hh"
#include "base/random.hh"
#include "core/apply.hh"
#include "core/model_file.hh"
#include "core/stream_loader.hh"
#include "linalg/linalg.hh"
#include "nn/blocks.hh"

namespace se {
namespace {

core::SeMatrix
makeMatrix(uint64_t seed, double sparsity = 0.3)
{
    Rng rng(seed);
    Tensor w = randn({48, 3}, rng, 0.0f, 0.1f);
    core::SeOptions opts;
    opts.minVectorSparsity = sparsity;
    return core::decomposeMatrix(w, opts);
}

/**
 * A random SmartExchange-form matrix built directly (no ALS), so the
 * property tests can sweep many shapes/alphabets cheaply. Every
 * coefficient is 0 or +-2^p with p in the alphabet — exactly what a
 * legal file can carry.
 */
core::SeMatrix
randomSeMatrix(Rng &rng)
{
    core::SeMatrix m;
    const int64_t rows = rng.integer(1, 40);
    const int64_t rank = rng.integer(1, 6);
    const int64_t cols = rng.integer(1, 6);
    m.alphabet.expMax = (int)rng.integer(-8, 8);
    m.alphabet.numLevels = (int)rng.integer(1, 7);
    m.iterations = (int)rng.integer(0, 30);
    m.reconRelError = rng.uniform(0.0f, 0.5f);
    m.ce = Tensor({rows, rank});
    for (int64_t i = 0; i < m.ce.size(); ++i) {
        if (rng.chance(0.4))
            continue;  // zero coefficient
        const int exp = (int)rng.integer(m.alphabet.expMin(),
                                         m.alphabet.expMax);
        const float mag = std::ldexp(1.0f, exp);
        m.ce[i] = rng.chance(0.5) ? mag : -mag;
    }
    m.basis = randn({rank, cols}, rng, 0.0f, 1.0f);
    return m;
}

void
expectBitIdentical(const core::SeMatrix &a, const core::SeMatrix &b)
{
    ASSERT_EQ(a.ce.shape(), b.ce.shape());
    ASSERT_EQ(a.basis.shape(), b.basis.shape());
    EXPECT_EQ(std::memcmp(a.ce.data(), b.ce.data(),
                          (size_t)a.ce.size() * sizeof(float)),
              0);
    EXPECT_EQ(std::memcmp(a.basis.data(), b.basis.data(),
                          (size_t)a.basis.size() * sizeof(float)),
              0);
    EXPECT_EQ(a.alphabet.expMax, b.alphabet.expMax);
    EXPECT_EQ(a.alphabet.numLevels, b.alphabet.numLevels);
    EXPECT_EQ(a.iterations, b.iterations);
    EXPECT_DOUBLE_EQ(a.reconRelError, b.reconRelError);
}

TEST(ModelFile, SeMatrixExactRoundTrip)
{
    auto m = makeMatrix(1);
    std::stringstream ss;
    core::saveSeMatrix(ss, m);
    auto back = core::loadSeMatrix(ss);
    expectBitIdentical(m, back);
}

TEST(ModelFile, ReconstructionIdenticalAfterRoundTrip)
{
    auto m = makeMatrix(2, 0.5);
    std::stringstream ss;
    core::saveSeMatrix(ss, m);
    auto back = core::loadSeMatrix(ss);
    EXPECT_LT(linalg::frobDiff(m.reconstruct(), back.reconstruct()),
              1e-6);
}

TEST(ModelFile, BundleRoundTrip)
{
    std::vector<core::SeLayerRecord> layers;
    layers.push_back({"conv1", {makeMatrix(3), makeMatrix(4)}});
    layers.push_back({"conv2", {makeMatrix(5)}});

    std::stringstream ss;
    core::saveModel(ss, layers);
    auto back = core::loadModel(ss);

    ASSERT_EQ(back.size(), 2u);
    EXPECT_EQ(back[0].name, "conv1");
    EXPECT_EQ(back[0].pieces.size(), 2u);
    EXPECT_EQ(back[1].name, "conv2");
    for (int64_t i = 0; i < layers[0].pieces[1].ce.size(); ++i)
        EXPECT_FLOAT_EQ(back[0].pieces[1].ce[i],
                        layers[0].pieces[1].ce[i]);
}

TEST(ModelFile, FileRoundTripOnDisk)
{
    std::vector<core::SeLayerRecord> layers;
    layers.push_back({"layer", {makeMatrix(6)}});
    const std::string path = "/tmp/se_model_test.sexm";
    core::saveModelFile(path, layers);
    auto back = core::loadModelFile(path);
    ASSERT_EQ(back.size(), 1u);
    EXPECT_EQ(back[0].name, "layer");
}

TEST(ModelFile, RejectsBadMagic)
{
    std::stringstream ss;
    ss << "this is not a model file at all";
    EXPECT_THROW(core::loadModel(ss), core::ModelFileError);
}

TEST(ModelFile, WholeConvLayerRoundTrip)
{
    // Decompose a real conv layer, ship it, rebuild the weights from
    // the loaded form: same tensor as rebuilding from the original.
    Rng rng(7);
    nn::Conv2d conv(4, 6, 3, 1, 1, 1, rng, false);
    core::SeOptions opts;
    opts.minVectorSparsity = 0.3;
    auto pieces = core::decomposeConvWeight(conv.weightTensor(), opts,
                                            core::ApplyOptions{});
    std::stringstream ss;
    core::saveModel(ss, {{"conv", pieces}});
    auto back = core::loadModel(ss);
    ASSERT_EQ(back[0].pieces.size(), pieces.size());
    for (size_t i = 0; i < pieces.size(); ++i)
        EXPECT_LT(linalg::frobDiff(pieces[i].reconstruct(),
                                   back[0].pieces[i].reconstruct()),
                  1e-6);
}

TEST(ModelFile, StorageIsCompact)
{
    // The on-disk size must be far below FP32 for a sparse layer.
    auto m = makeMatrix(8, 0.6);
    std::stringstream ss;
    core::saveSeMatrix(ss, m);
    const int64_t file_bytes = (int64_t)ss.str().size();
    const int64_t fp32_bytes = m.ce.dim(0) * m.basis.dim(1) * 4;
    EXPECT_LT(file_bytes, fp32_bytes);
}

// ------------------------------------------------ property/fuzz wall

TEST(ModelFileProperty, RandomMatricesRoundTripExactly)
{
    Rng rng(1234);
    for (int trial = 0; trial < 60; ++trial) {
        auto m = randomSeMatrix(rng);
        std::stringstream ss;
        core::saveSeMatrix(ss, m);
        auto back = core::loadSeMatrix(ss);
        expectBitIdentical(m, back);
    }
}

TEST(ModelFileProperty, RandomBundlesRoundTripExactly)
{
    Rng rng(99);
    for (int trial = 0; trial < 10; ++trial) {
        std::vector<core::SeLayerRecord> layers;
        const int64_t n = rng.integer(0, 5);
        for (int64_t l = 0; l < n; ++l) {
            core::SeLayerRecord rec;
            rec.name = "layer_" + std::to_string(trial) + "_" +
                       std::to_string(l);
            const int64_t pieces = rng.integer(1, 4);
            for (int64_t p = 0; p < pieces; ++p)
                rec.pieces.push_back(randomSeMatrix(rng));
            layers.push_back(std::move(rec));
        }
        std::stringstream ss;
        core::saveModel(ss, layers);
        auto back = core::loadModel(ss);
        ASSERT_EQ(back.size(), layers.size());
        for (size_t l = 0; l < layers.size(); ++l) {
            EXPECT_EQ(back[l].name, layers[l].name);
            ASSERT_EQ(back[l].pieces.size(), layers[l].pieces.size());
            for (size_t p = 0; p < layers[l].pieces.size(); ++p)
                expectBitIdentical(layers[l].pieces[p],
                                   back[l].pieces[p]);
        }
    }
}

TEST(ModelFileProperty, EveryTruncatedPrefixFailsCleanly)
{
    Rng rng(7);
    std::vector<core::SeLayerRecord> layers;
    layers.push_back({"a", {randomSeMatrix(rng)}});
    layers.push_back({"b", {randomSeMatrix(rng), randomSeMatrix(rng)}});
    std::stringstream ss;
    core::saveModel(ss, layers);
    const std::string full = ss.str();

    for (size_t cut = 0; cut < full.size(); ++cut) {
        std::istringstream damaged(full.substr(0, cut),
                                   std::ios::binary);
        EXPECT_THROW(core::loadModel(damaged), core::ModelFileError)
            << "prefix of " << cut << "/" << full.size()
            << " bytes was accepted";
    }
}

TEST(ModelFileProperty, EverySingleBitFlipFailsCleanly)
{
    // The header carries the body size and an FNV-1a checksum, so NO
    // single-bit corruption anywhere in the stream may load — not as
    // the original bundle, not as a different one.
    Rng rng(8);
    std::vector<core::SeLayerRecord> layers;
    layers.push_back({"layer", {randomSeMatrix(rng)}});
    std::stringstream ss;
    core::saveModel(ss, layers);
    const std::string full = ss.str();

    for (size_t byte = 0; byte < full.size(); ++byte) {
        const int bit = (int)rng.integer(0, 7);
        std::string damaged = full;
        damaged[byte] = (char)(damaged[byte] ^ (1 << bit));
        std::istringstream is(damaged, std::ios::binary);
        EXPECT_THROW(core::loadModel(is), core::ModelFileError)
            << "bit " << bit << " of byte " << byte
            << " flipped and the bundle still loaded";
    }
}

TEST(ModelFileProperty, SignBitOnZeroCoefCodeRejected)
{
    // Byte 0x80 (sign bit set, exponent code 0) is not a legal
    // coefficient encoding — it must throw, not decode to a value
    // below the alphabet. The first coefficient byte sits right
    // after the fixed header: 3x int64 dims + 3x int32 + 1 double.
    auto m = makeMatrix(10);
    std::stringstream ss;
    core::saveSeMatrix(ss, m);
    std::string bytes = ss.str();
    const size_t first_coef = 3 * 8 + 3 * 4 + 8;
    ASSERT_GT(bytes.size(), first_coef);
    bytes[first_coef] = (char)0x80;
    std::istringstream is(bytes, std::ios::binary);
    EXPECT_THROW(core::loadSeMatrix(is), core::ModelFileError);
}

TEST(ModelFileProperty, GarbageStreamsNeverCrash)
{
    Rng rng(9);
    for (int trial = 0; trial < 40; ++trial) {
        const int64_t len = rng.integer(0, 512);
        std::string junk((size_t)len, '\0');
        for (auto &c : junk)
            c = (char)rng.integer(0, 255);
        std::istringstream is(junk, std::ios::binary);
        EXPECT_THROW(core::loadModel(is), core::ModelFileError);
    }
}

// ------------------------------------------------ v3: packed 4-bit

/**
 * A hand-built SeMatrix whose on-stream v3 layout is fully known:
 * `rows` x 3 Ce with every row non-zero, alphabet {numLevels, expMax
 * 0} — the fixture the structural-corruption tests patch bytes of.
 */
core::SeMatrix
craftedMatrix(int64_t rows, int num_levels)
{
    core::SeMatrix m;
    m.alphabet.expMax = 0;
    m.alphabet.numLevels = num_levels;
    m.ce = Tensor({rows, 3});
    for (int64_t i = 0; i < rows; ++i)
        for (int64_t j = 0; j < 3; ++j) {
            const int code = (int)((i + j) % num_levels) + 1;
            const int exp = m.alphabet.expMin() + code - 1;
            const float mag = std::ldexp(1.0f, exp);
            m.ce.at(i, j) = ((i + j) % 2) ? -mag : mag;
        }
    Rng rng(5);
    m.basis = randn({3, 4}, rng);
    return m;
}

/** v3 header is magic + version + body size + checksum. */
constexpr size_t kHeaderBytes = 4 + 4 + 8 + 8;

/**
 * Patch one body byte of a framed bundle and fix up the header
 * checksum, so the load reaches the structural validation instead of
 * stopping at the checksum gate.
 */
std::string
patchBody(std::string stream, size_t body_off,
          const std::function<char(char)> &edit)
{
    const size_t at = kHeaderBytes + body_off;
    EXPECT_LT(at, stream.size());
    stream[at] = edit(stream[at]);
    // v3 checksums are seeded with the version word.
    const uint64_t sum =
        fnv1a(stream.data() + kHeaderBytes,
              stream.size() - kHeaderBytes, hashValue(3u));
    std::memcpy(stream.data() + 16, &sum, sizeof(sum));
    return stream;
}

/**
 * Body offset of the row mask for a single-record, single-piece v3
 * bundle whose record name is `name_len` bytes: record count (4) +
 * name (4 + len) + piece count (4) + the 27-byte piece header
 * (rows u32, rank u16, cols u16, expMax i16, numLevels u8,
 * iterations i32, reconRelError f64, nonZeroRows u32).
 */
size_t
maskOffset(size_t name_len)
{
    return 4 + (4 + name_len) + 4 + (4 + 2 + 2 + 2 + 1 + 4 + 8 + 4);
}

TEST(ModelFileV3, RandomMatricesRoundTripExactly)
{
    Rng rng(4321);
    for (int trial = 0; trial < 60; ++trial) {
        auto m = randomSeMatrix(rng);
        std::stringstream ss;
        core::saveModelV3(ss, {{"m", {m}}});
        auto back = core::loadModelBundle(ss);
        ASSERT_EQ(back.records.size(), 1u);
        ASSERT_EQ(back.records[0].pieces.size(), 1u);
        expectBitIdentical(m, back.records[0].pieces[0]);
        EXPECT_TRUE(back.dense.empty());
    }
}

TEST(ModelFileV3, OddCodeCountsAndAllZeroRowsRoundTrip)
{
    // Odd non-zero-code counts exercise the pad nibble; matrices of
    // only zero rows exercise an empty nibble stream.
    Rng rng(77);
    for (const auto &[rows, cols] : std::vector<std::pair<
             int64_t, int64_t>>{{1, 1}, {3, 3}, {5, 1}, {7, 3},
                                {9, 5}, {2, 2}}) {
        core::SeMatrix m;
        m.alphabet.expMax = 2;
        m.alphabet.numLevels = 7;
        m.ce = Tensor({rows, cols});
        for (int64_t i = 0; i < m.ce.size(); ++i)
            if (rng.chance(0.5)) {
                const int exp = (int)rng.integer(
                    m.alphabet.expMin(), m.alphabet.expMax);
                m.ce[i] = rng.chance(0.5) ? std::ldexp(1.0f, exp)
                                          : -std::ldexp(1.0f, exp);
            }
        m.basis = randn({cols, 3}, rng);
        std::stringstream ss;
        core::saveModelV3(ss, {{"m", {m}}});
        auto back = core::loadModelBundle(ss);
        expectBitIdentical(m, back.records[0].pieces[0]);

        // The packed form itself round-trips exactly too.
        const auto packed = core::packCe(m.ce, m.alphabet);
        const Tensor unpacked = core::unpackCe(packed);
        EXPECT_EQ(std::memcmp(unpacked.data(), m.ce.data(),
                              (size_t)m.ce.size() * sizeof(float)),
                  0)
            << rows << "x" << cols;
    }
}

TEST(ModelFileV3, DenseResidualRoundTripsExactly)
{
    Rng rng(88);
    std::vector<core::DenseTensor> dense;
    dense.push_back({"0:bn:gamma", randn({8}, rng)});
    dense.push_back({"0:bn:beta", randn({8}, rng)});
    dense.push_back({"1:conv:weight", randn({4, 3, 3, 3}, rng)});
    std::stringstream ss;
    core::saveModelV3(ss, {{"layer", {makeMatrix(31)}}}, dense);
    auto back = core::loadModelBundle(ss);
    ASSERT_EQ(back.dense.size(), dense.size());
    for (size_t i = 0; i < dense.size(); ++i) {
        EXPECT_EQ(back.dense[i].name, dense[i].name);
        ASSERT_EQ(back.dense[i].value.shape(),
                  dense[i].value.shape());
        EXPECT_EQ(std::memcmp(
                      back.dense[i].value.data(),
                      dense[i].value.data(),
                      (size_t)dense[i].value.size() * sizeof(float)),
                  0);
    }
}

TEST(ModelFileV3, RecordsOnlyViewRefusesToDropDenseState)
{
    std::stringstream ss;
    core::saveModelV3(ss, {{"layer", {makeMatrix(32)}}},
                      {{"0:bn:gamma", Tensor({4}, 1.0f)}});
    EXPECT_THROW(core::loadModel(ss), core::ModelFileError);

    // Without a dense section the records-only view stays usable.
    std::stringstream plain;
    core::saveModelV3(plain, {{"layer", {makeMatrix(32)}}});
    EXPECT_EQ(core::loadModel(plain).size(), 1u);
}

TEST(ModelFileV3, V2BundlesStillLoadThroughTheBundleApi)
{
    std::vector<core::SeLayerRecord> layers;
    layers.push_back({"conv1", {makeMatrix(33)}});
    std::stringstream ss;
    core::saveModel(ss, layers);
    auto back = core::loadModelBundle(ss);
    ASSERT_EQ(back.records.size(), 1u);
    EXPECT_TRUE(back.dense.empty());
    expectBitIdentical(layers[0].pieces[0],
                       back.records[0].pieces[0]);
}

TEST(ModelFileV3, PacksSmallerThanV2)
{
    // The point of v3: true 4-bit codes + zero-row elision. On a
    // sparse matrix the coefficient payload must shrink by > 2x.
    auto m = makeMatrix(34, 0.5);
    std::stringstream v2, v3;
    core::saveModel(v2, {{"m", {m}}});
    core::saveModelV3(v3, {{"m", {m}}});
    EXPECT_LT(v3.str().size(), v2.str().size());
}

TEST(ModelFileV3, WideAlphabetsRefuseToPack)
{
    core::SeMatrix m = craftedMatrix(4, 7);
    m.alphabet.numLevels = 9;  // coefBits > 4 territory
    std::stringstream ss;
    EXPECT_THROW(core::saveModelV3(ss, {{"m", {m}}}),
                 core::ModelFileError);
    EXPECT_THROW(core::packCe(m.ce, m.alphabet),
                 core::ModelFileError);
}

TEST(ModelFileV3Property, EveryTruncatedPrefixFailsCleanly)
{
    Rng rng(17);
    std::vector<core::SeLayerRecord> layers;
    layers.push_back({"a", {randomSeMatrix(rng)}});
    layers.push_back(
        {"b", {randomSeMatrix(rng), randomSeMatrix(rng)}});
    std::stringstream ss;
    core::saveModelV3(ss, layers,
                      {{"2:bn:gamma", Tensor({6}, 1.0f)}});
    const std::string full = ss.str();

    for (size_t cut = 0; cut < full.size(); ++cut) {
        std::istringstream damaged(full.substr(0, cut),
                                   std::ios::binary);
        EXPECT_THROW(core::loadModelBundle(damaged),
                     core::ModelFileError)
            << "prefix of " << cut << "/" << full.size()
            << " bytes was accepted";
    }
}

TEST(ModelFileV3Property, EverySingleBitFlipFailsCleanly)
{
    Rng rng(18);
    std::vector<core::SeLayerRecord> layers;
    layers.push_back({"layer", {randomSeMatrix(rng)}});
    std::stringstream ss;
    core::saveModelV3(ss, layers,
                      {{"1:conv:bias", Tensor({3}, 0.5f)}});
    const std::string full = ss.str();

    for (size_t byte = 0; byte < full.size(); ++byte) {
        const int bit = (int)rng.integer(0, 7);
        std::string damaged = full;
        damaged[byte] = (char)(damaged[byte] ^ (1 << bit));
        std::istringstream is(damaged, std::ios::binary);
        EXPECT_THROW(core::loadModelBundle(is), core::ModelFileError)
            << "bit " << bit << " of byte " << byte
            << " flipped and the bundle still loaded";
    }
}

TEST(ModelFileV3Property, StructuralCorruptionBehindAValidChecksum)
{
    // The deep validation the bit-flip wall cannot reach (it stops at
    // the checksum): re-checksummed streams with targeted damage.
    const core::SeMatrix m = craftedMatrix(3, 3);
    std::stringstream ss;
    core::saveModelV3(ss, {{"m", {m}}});
    const std::string good = ss.str();
    {
        std::istringstream is(good, std::ios::binary);
        EXPECT_NO_THROW(core::loadModelBundle(is));  // fixture sane
    }
    const size_t mask_off = maskOffset(1);  // name "m"
    const size_t nib_off = mask_off + 1;    // 3 rows -> 1 mask byte

    struct Case
    {
        const char *what;
        size_t off;
        std::function<char(char)> edit;
    };
    const std::vector<Case> cases{
        // 0x80-style invalid nibble: sign bit with exponent code 0.
        {"sign-on-zero nibble", nib_off,
         [](char c) { return (char)((c & 0xF0) | 0x8); }},
        // Exponent code above the stored 3-level alphabet.
        {"code outside alphabet", nib_off,
         [](char c) { return (char)((c & 0xF0) | 0x5); }},
        // Mask claims a row past the last one (tail bits dirty).
        {"mask tail bit", mask_off,
         [](char c) { return (char)(c | 0x10); }},
        // Mask population no longer matches the stored count.
        {"mask popcount drift", mask_off,
         [](char c) { return (char)(c & ~0x1); }},
    };
    for (const Case &c : cases) {
        const std::string bad = patchBody(good, c.off, c.edit);
        std::istringstream is(bad, std::ios::binary);
        EXPECT_THROW(core::loadModelBundle(is), core::ModelFileError)
            << c.what;
    }

    // A flagged row whose codes all decode to zero (nibbles zeroed)
    // must be rejected, not silently re-sparsified.
    std::string zeroed = good;
    zeroed = patchBody(zeroed, nib_off, [](char) { return 0; });
    zeroed = patchBody(zeroed, nib_off + 1,
                       [](char c) { return (char)(c & 0xF0); });
    std::istringstream is(zeroed, std::ios::binary);
    EXPECT_THROW(core::loadModelBundle(is), core::ModelFileError);

    // And the pad nibble of an odd code count must stay zero: 3x3
    // fully dense = 9 codes = 4.5 bytes.
    const size_t last_nib = nib_off + 4;
    const std::string dirty_pad = patchBody(
        good, last_nib, [](char c) { return (char)(c | 0x30); });
    std::istringstream is2(dirty_pad, std::ios::binary);
    EXPECT_THROW(core::loadModelBundle(is2), core::ModelFileError);
}

// ------------------------------------------------ nn <-> record glue

/** A small CNN exercising conv KxK, 1x1 and FC reshape rules. */
std::unique_ptr<nn::Sequential>
makeCnn(uint64_t seed)
{
    Rng rng(seed);
    auto net = std::make_unique<nn::Sequential>();
    net->add<nn::Conv2d>(3, 8, 3, 1, 1, 1, rng, false);
    net->add<nn::BatchNorm2d>(8);
    net->add<nn::Conv2d>(8, 16, 1, 1, 0, 1, rng, false);
    net->add<nn::Linear>(64, 10, rng, false);
    return net;
}

std::vector<const Tensor *>
collectWeights(nn::Sequential &net)
{
    std::vector<const Tensor *> ws;
    net.visit([&](nn::Layer &l) {
        if (auto *c = dynamic_cast<nn::Conv2d *>(&l))
            ws.push_back(&c->weightTensor());
        else if (auto *f = dynamic_cast<nn::Linear *>(&l))
            ws.push_back(&f->weightTensor());
    });
    return ws;
}

TEST(ModelRecords, CompressSaveLoadInstallRoundTrip)
{
    core::SeOptions se_opts;
    se_opts.vectorThreshold = 0.01;
    core::ApplyOptions apply_opts;

    // Compress net A in place, keeping the shippable records.
    auto a = makeCnn(21);
    auto compressed = core::compressToRecords(*a, se_opts, apply_opts);
    EXPECT_FALSE(compressed.records.empty());
    EXPECT_GT(compressed.report.compressionRate(), 1.0);

    // Ship through the binary format.
    std::stringstream ss;
    core::saveModel(ss, compressed.records);
    auto shipped = core::loadModel(ss);

    // Install into a fresh instance of the same architecture: the
    // dense weights must equal net A's bit for bit.
    auto b = makeCnn(21);
    auto report =
        core::installLayerRecords(*b, shipped, se_opts, apply_opts);

    auto wa = collectWeights(*a), wb = collectWeights(*b);
    ASSERT_EQ(wa.size(), wb.size());
    for (size_t i = 0; i < wa.size(); ++i)
        EXPECT_EQ(std::memcmp(wa[i]->data(), wb[i]->data(),
                              (size_t)wa[i]->size() * sizeof(float)),
                  0)
            << "weight " << i;
    EXPECT_EQ(report.compressedBits(),
              compressed.report.compressedBits());
}

TEST(ModelRecords, InstallRejectsWrongArchitecture)
{
    core::SeOptions se_opts;
    se_opts.vectorThreshold = 0.01;
    auto a = makeCnn(22);
    auto compressed =
        core::compressToRecords(*a, se_opts, core::ApplyOptions{});

    // Different conv widths -> different slice geometry.
    Rng rng(23);
    auto wrong = std::make_unique<nn::Sequential>();
    wrong->add<nn::Conv2d>(3, 4, 3, 1, 1, 1, rng, false);
    wrong->add<nn::Linear>(64, 10, rng, false);
    EXPECT_THROW(core::installLayerRecords(*wrong, compressed.records,
                                           se_opts,
                                           core::ApplyOptions{}),
                 core::ModelFileError);
}

/** CNN with BN (prunable) plus a biased conv and a tiny dense conv. */
std::unique_ptr<nn::Sequential>
makePrunableCnn(uint64_t seed)
{
    Rng rng(seed);
    auto net = std::make_unique<nn::Sequential>();
    net->add<nn::Conv2d>(3, 8, 3, 1, 1, 1, rng, false);
    net->add<nn::BatchNorm2d>(8);
    net->add<nn::ReLU>();
    net->add<nn::Conv2d>(8, 12, 3, 1, 1, 1, rng, /*bias=*/true);
    net->add<nn::BatchNorm2d>(12);
    net->add<nn::ReLU>();
    net->add<nn::Conv2d>(12, 2, 1, 1, 0, 1, rng, false);  // tiny:
    net->add<nn::GlobalAvgPool>();                        // stays dense
    net->add<nn::Flatten>();
    net->add<nn::Linear>(2, 10, rng, /*bias=*/true);
    return net;
}

/** Force deterministic prunable channels and non-trivial BN stats. */
void
perturbBn(nn::Sequential &net, uint64_t seed)
{
    Rng rng(seed);
    net.visit([&](nn::Layer &l) {
        if (auto *bn = dynamic_cast<nn::BatchNorm2d *>(&l)) {
            Tensor &g = bn->gammaTensor();
            for (int64_t c = 0; c < g.size(); ++c) {
                g[c] = rng.chance(0.3) ? 1e-4f
                                       : rng.uniform(0.5f, 1.5f);
                bn->betaTensor()[c] = rng.uniform(-0.2f, 0.2f);
                bn->runningMeanTensor()[c] =
                    rng.uniform(-0.5f, 0.5f);
                bn->runningVarTensor()[c] = rng.uniform(0.5f, 2.0f);
            }
        }
    });
}

void
expectNetsBitIdentical(nn::Sequential &a, nn::Sequential &b)
{
    std::vector<std::pair<std::string, const Tensor *>> ta, tb;
    const auto collect = [](nn::Sequential &net, auto &out) {
        net.visit([&](nn::Layer &l) {
            if (auto *c = dynamic_cast<nn::Conv2d *>(&l)) {
                out.emplace_back("conv.w", &c->weightTensor());
                out.emplace_back("conv.b", &c->biasTensor());
            } else if (auto *f = dynamic_cast<nn::Linear *>(&l)) {
                out.emplace_back("linear.w", &f->weightTensor());
                out.emplace_back("linear.b", &f->biasTensor());
            } else if (auto *bn =
                           dynamic_cast<nn::BatchNorm2d *>(&l)) {
                out.emplace_back("bn.g", &bn->gammaTensor());
                out.emplace_back("bn.b", &bn->betaTensor());
                out.emplace_back("bn.rm", &bn->runningMeanTensor());
                out.emplace_back("bn.rv", &bn->runningVarTensor());
            }
        });
    };
    collect(a, ta);
    collect(b, tb);
    ASSERT_EQ(ta.size(), tb.size());
    for (size_t i = 0; i < ta.size(); ++i) {
        ASSERT_EQ(ta[i].second->shape(), tb[i].second->shape())
            << ta[i].first << " #" << i;
        if (ta[i].second->empty())
            continue;  // bias-less layers carry an empty tensor
        EXPECT_EQ(std::memcmp(ta[i].second->data(),
                              tb[i].second->data(),
                              (size_t)ta[i].second->size() *
                                  sizeof(float)),
                  0)
            << ta[i].first << " #" << i;
    }
}

TEST(ModelBundleV3, PrunedModelRoundTripsWithNoOutOfBandRestore)
{
    core::SeOptions se_opts;
    se_opts.vectorThreshold = 0.01;
    core::ApplyOptions apply_opts;
    apply_opts.channelGammaThreshold = 1e-3;  // pruning ON

    auto a = makePrunableCnn(41);
    perturbBn(*a, 42);
    auto compressed = core::compressToRecords(*a, se_opts, apply_opts);
    EXPECT_FALSE(compressed.dense.empty());

    // Ship as v3 and install into a PRISTINE factory net — crucially,
    // one that never saw perturbBn, so nothing about the pruned BN
    // state can leak in out of band.
    std::stringstream ss;
    core::saveModelV3(ss, compressed.records, compressed.dense);
    auto bundle = core::loadModelBundle(ss);
    auto b = makePrunableCnn(41);
    core::installModelBundle(*b, bundle, se_opts, apply_opts);

    expectNetsBitIdentical(*a, *b);
    Rng rng(43);
    Tensor x = randn({2, 3, 6, 6}, rng);
    Tensor ya = a->forward(x, false);
    Tensor yb = b->forward(x, false);
    EXPECT_EQ(std::memcmp(ya.data(), yb.data(),
                          (size_t)ya.size() * sizeof(float)),
              0);
}

TEST(ModelBundleV3Property, RandomPrunedModelsRoundTrip)
{
    for (uint64_t seed = 60; seed < 66; ++seed) {
        core::SeOptions se_opts;
        se_opts.vectorThreshold = 0.02;
        core::ApplyOptions apply_opts;
        apply_opts.channelGammaThreshold = 1e-3;

        auto a = makePrunableCnn(seed);
        perturbBn(*a, seed * 31 + 1);
        auto compressed =
            core::compressToRecords(*a, se_opts, apply_opts);
        std::stringstream ss;
        core::saveModelV3(ss, compressed.records, compressed.dense);
        auto bundle = core::loadModelBundle(ss);
        auto b = makePrunableCnn(seed);
        core::installModelBundle(*b, bundle, se_opts, apply_opts);

        Rng rng(seed + 7);
        Tensor x = randn({1, 3, 6, 6}, rng);
        Tensor ya = a->forward(x, false);
        Tensor yb = b->forward(x, false);
        EXPECT_EQ(std::memcmp(ya.data(), yb.data(),
                              (size_t)ya.size() * sizeof(float)),
                  0)
            << "seed " << seed;
    }
}

TEST(ModelBundleV3, DenseStateInstallRejectsDrift)
{
    core::SeOptions se_opts;
    se_opts.vectorThreshold = 0.01;
    core::ApplyOptions apply_opts;
    auto a = makePrunableCnn(45);
    auto compressed = core::compressToRecords(*a, se_opts, apply_opts);
    ASSERT_FALSE(compressed.dense.empty());

    // Renamed tensor: wrong architecture or wrong walk order.
    {
        auto bundle = compressed.bundle();
        bundle.dense[0].name = "999:bogus:gamma";
        auto b = makePrunableCnn(45);
        EXPECT_THROW(core::installModelBundle(*b, bundle, se_opts,
                                              apply_opts),
                     core::ModelFileError);
    }
    // Mis-shaped tensor.
    {
        auto bundle = compressed.bundle();
        bundle.dense[0].value = Tensor({1}, 0.0f);
        auto b = makePrunableCnn(45);
        EXPECT_THROW(core::installModelBundle(*b, bundle, se_opts,
                                              apply_opts),
                     core::ModelFileError);
    }
    // Missing and extra tensors.
    {
        auto bundle = compressed.bundle();
        bundle.dense.pop_back();
        auto b = makePrunableCnn(45);
        EXPECT_THROW(core::installModelBundle(*b, bundle, se_opts,
                                              apply_opts),
                     core::ModelFileError);
    }
    {
        auto bundle = compressed.bundle();
        bundle.dense.push_back({"ghost", Tensor({2}, 1.0f)});
        auto b = makePrunableCnn(45);
        EXPECT_THROW(core::installModelBundle(*b, bundle, se_opts,
                                              apply_opts),
                     core::ModelFileError);
    }
}

TEST(ModelRecords, InstallRejectsExtraRecords)
{
    core::SeOptions se_opts;
    se_opts.vectorThreshold = 0.01;
    auto a = makeCnn(24);
    auto compressed =
        core::compressToRecords(*a, se_opts, core::ApplyOptions{});
    compressed.records.push_back({"ghost", {makeMatrix(25)}});

    auto b = makeCnn(24);
    EXPECT_THROW(core::installLayerRecords(*b, compressed.records,
                                           se_opts,
                                           core::ApplyOptions{}),
                 core::ModelFileError);
}

// ====================================================== model file v4

std::string
saveV4String(const std::vector<core::SeLayerRecord> &records,
             const std::vector<core::DenseTensor> &dense = {})
{
    std::stringstream ss;
    core::saveModelV4(ss, records, dense);
    return ss.str();
}

core::ModelBundle
loadFromString(const std::string &s)
{
    std::istringstream is(s);
    return core::loadModelBundle(is);
}

void
writeFile(const std::string &path, const std::string &bytes)
{
    std::ofstream os(path, std::ios::binary | std::ios::trunc);
    os.write(bytes.data(), (std::streamsize)bytes.size());
    EXPECT_TRUE(os.good());
}

/**
 * v4 piece-payload header offsets (27 bytes): rows u32 @0, rank u16
 * @4, cols u16 @6, expMax i16 @8, numLevels u8 @10, iterations i32
 * @11, reconRelError f64 @15, basisScale f32 @23; row mask @27, then
 * the 2-bit-packed width table, bitstream, int8 basis.
 */
constexpr size_t kV4NumLevelsOff = 10;
constexpr size_t kV4ScaleOff = 23;
constexpr size_t kV4MaskOff = 27;

/**
 * Patch one byte of piece `piece`'s payload and fix up BOTH checksums
 * behind it — the piece checksum in the directory row and the meta
 * checksum in the header — so the load reaches the structural
 * validation instead of stopping at a checksum gate.
 */
std::string
patchV4Piece(std::string stream, size_t piece, size_t payload_off,
             const std::function<char(char)> &edit)
{
    namespace v4 = core::modelv4;
    const v4::Meta meta = v4::parseMeta(
        reinterpret_cast<const uint8_t *>(stream.data()),
        stream.size());
    const v4::PieceDirEntry &e = meta.directory.at(piece);
    EXPECT_LT(payload_off, (size_t)e.length);
    stream[(size_t)e.offset + payload_off] =
        edit(stream[(size_t)e.offset + payload_off]);
    const uint32_t psum =
        (uint32_t)fnv1a(stream.data() + e.offset, (size_t)e.length,
                        hashValue(4u));
    // Directory rows (u32 length + u32 checksum) are the last
    // 8 * pieces bytes of the meta section; the checksum sits 4
    // bytes into a row.
    const size_t dir_at = v4::kHeaderBytes + (size_t)meta.metaBytes -
                          8 * meta.directory.size() + 8 * piece + 4;
    std::memcpy(stream.data() + dir_at, &psum, sizeof(psum));
    const uint64_t msum =
        fnv1a(stream.data() + v4::kHeaderBytes,
              (size_t)meta.metaBytes, hashValue(4u));
    std::memcpy(stream.data() + 24, &msum, sizeof(msum));
    return stream;
}

TEST(ModelFileV4, RandomBundlesRoundTripExactly)
{
    Rng rng(60);
    for (int round = 0; round < 20; ++round) {
        std::vector<core::SeLayerRecord> layers;
        const int n_layers = (int)rng.integer(1, 3);
        for (int l = 0; l < n_layers; ++l) {
            core::SeLayerRecord rec;
            rec.name = "layer" + std::to_string(l);
            const int n_pieces = (int)rng.integer(1, 3);
            for (int p = 0; p < n_pieces; ++p)
                rec.pieces.push_back(randomSeMatrix(rng));
            layers.push_back(std::move(rec));
        }
        core::quantizeBasisAtCompress(layers);

        const core::ModelBundle back =
            loadFromString(saveV4String(layers));
        ASSERT_EQ(back.records.size(), layers.size());
        for (size_t l = 0; l < layers.size(); ++l) {
            EXPECT_EQ(back.records[l].name, layers[l].name);
            ASSERT_EQ(back.records[l].pieces.size(),
                      layers[l].pieces.size());
            for (size_t p = 0; p < layers[l].pieces.size(); ++p)
                expectBitIdentical(layers[l].pieces[p],
                                   back.records[l].pieces[p]);
        }
    }
}

TEST(ModelFileV4, EdgeShapesRoundTrip)
{
    Rng rng(61);
    std::vector<core::SeLayerRecord> layers;

    // An all-zero Ce: zero surviving rows, zero bitstream bytes.
    core::SeMatrix zero = randomSeMatrix(rng);
    zero.ce = Tensor({zero.ce.dim(0), zero.ce.dim(1)});
    layers.push_back({"zero", {zero}});

    // A single-row piece.
    core::SeMatrix one_row = randomSeMatrix(rng);
    one_row.alphabet.expMax = 0;
    one_row.alphabet.numLevels = 1;
    one_row.ce = Tensor({1, 3});
    one_row.ce.at(0, 1) = 1.0f;  // 2^0, the alphabet's only level
    one_row.basis = randn({3, 2}, rng);
    layers.push_back({"one_row", {one_row}});

    // An all-zero COLUMN among live ones: that column's width is 0
    // and it spends no bits at all.
    core::SeMatrix dead_col = craftedMatrix(5, 3);
    for (int64_t i = 0; i < dead_col.ce.dim(0); ++i)
        dead_col.ce.at(i, 1) = 0.0f;
    layers.push_back({"dead_col", {dead_col}});

    // The width extremes: 1-level alphabet (1-bit codes) and the
    // 7-level maximum (3-bit codes).
    layers.push_back({"w1", {craftedMatrix(5, 1)}});
    layers.push_back({"w3", {craftedMatrix(5, 7)}});

    // An all-zero basis (scale canonically 1).
    core::SeMatrix zero_basis = craftedMatrix(3, 3);
    zero_basis.basis = Tensor({3, 4});
    layers.push_back({"zero_basis", {zero_basis}});

    core::quantizeBasisAtCompress(layers);
    const core::ModelBundle back = loadFromString(saveV4String(layers));
    ASSERT_EQ(back.records.size(), layers.size());
    for (size_t l = 0; l < layers.size(); ++l)
        expectBitIdentical(layers[l].pieces[0],
                           back.records[l].pieces[0]);
}

TEST(ModelFileV4, SaveRequiresAQuantizedBasis)
{
    // 0.3 is not representable on the {scale = 1/127} int8 grid that
    // calibration picks for a max-1.0 basis, so this basis cannot be
    // recovered exactly and the save must refuse it.
    core::SeMatrix m;
    m.alphabet.expMax = 0;
    m.alphabet.numLevels = 1;
    m.ce = Tensor({1, 1}, 1.0f);
    m.basis = Tensor({1, 3});
    m.basis[0] = 1.0f;
    m.basis[1] = 0.3f;
    m.basis[2] = 0.7f;
    std::vector<core::SeLayerRecord> layers{{"m", {m}}};
    std::stringstream ss;
    EXPECT_THROW(core::saveModelV4(ss, layers), core::ModelFileError);

    // quantizeBasisAtCompress is exactly the missing step.
    core::quantizeBasisAtCompress(layers);
    std::stringstream ok;
    core::saveModelV4(ok, layers);
    expectBitIdentical(layers[0].pieces[0],
                       loadFromString(ok.str()).records[0].pieces[0]);
}

TEST(ModelFileV4, QuantizeBasisAtCompressReachesAFixedPoint)
{
    Rng rng(62);
    std::vector<core::SeLayerRecord> layers;
    layers.push_back({"a", {randomSeMatrix(rng)}});
    layers.push_back({"b", {randomSeMatrix(rng), randomSeMatrix(rng)}});

    EXPECT_GT(core::quantizeBasisAtCompress(layers), 0u);
    // Idempotent at the bit level: a second pass moves nothing.
    std::vector<Tensor> snap;
    for (const auto &rec : layers)
        for (const auto &p : rec.pieces)
            snap.push_back(p.basis);
    EXPECT_EQ(core::quantizeBasisAtCompress(layers), 0u);
    size_t k = 0;
    for (const auto &rec : layers)
        for (const auto &p : rec.pieces) {
            EXPECT_EQ(std::memcmp(snap[k].data(), p.basis.data(),
                                  (size_t)p.basis.size() *
                                      sizeof(float)),
                      0);
            ++k;
        }
}

TEST(ModelFileV4, PacksSmallerThanV3)
{
    // At a realistic shape (hundreds of rows, a 2-bit-occupied
    // alphabet, a float basis worth shrinking to int8) the adaptive
    // widths + int8 basis beat v3's fixed nibbles + f32 basis even
    // after the region-alignment and directory overhead.
    Rng rng(63);
    core::SeMatrix m;
    m.alphabet.expMax = 0;
    m.alphabet.numLevels = 3;  // codes fit 2 bits vs v3's fixed 4
    m.ce = Tensor({512, 8});
    for (int64_t i = 0; i < m.ce.size(); ++i) {
        if (rng.chance(0.4))
            continue;
        const int exp =
            m.alphabet.expMin() + (int)rng.integer(0, 2);
        const float mag = std::ldexp(1.0f, exp);
        m.ce[i] = rng.chance(0.5) ? mag : -mag;
    }
    m.basis = randn({8, 16}, rng);
    std::vector<core::SeLayerRecord> layers{{"big", {m}}};
    core::quantizeBasisAtCompress(layers);

    std::stringstream v3;
    core::saveModelV3(v3, layers);
    const std::string v4 = saveV4String(layers);
    EXPECT_LT(v4.size(), v3.str().size());
}

TEST(ModelFileV4, FileRoundTripOnDisk)
{
    Rng rng(64);
    core::ModelBundle bundle;
    bundle.records.push_back({"layer", {randomSeMatrix(rng)}});
    bundle.dense.push_back({"0:bn:gamma", randn({6}, rng)});
    core::quantizeBasisAtCompress(bundle.records);

    const std::string path = "/tmp/se_model_v4_test.sexm";
    core::saveModelV4File(path, bundle);
    const core::ModelBundle back = core::loadModelBundleFile(path);
    ASSERT_EQ(back.records.size(), 1u);
    expectBitIdentical(bundle.records[0].pieces[0],
                       back.records[0].pieces[0]);
    ASSERT_EQ(back.dense.size(), 1u);
    EXPECT_EQ(back.dense[0].name, "0:bn:gamma");
    EXPECT_EQ(std::memcmp(back.dense[0].value.data(),
                          bundle.dense[0].value.data(),
                          (size_t)bundle.dense[0].value.size() *
                              sizeof(float)),
              0);
}

TEST(ModelFileV4Property, EveryTruncatedPrefixFailsCleanly)
{
    Rng rng(65);
    std::vector<core::SeLayerRecord> layers;
    layers.push_back({"a", {randomSeMatrix(rng)}});
    layers.push_back({"b", {randomSeMatrix(rng), randomSeMatrix(rng)}});
    core::quantizeBasisAtCompress(layers);
    const std::string full =
        saveV4String(layers, {{"bias", randn({4}, rng)}});

    for (size_t cut = 0; cut < full.size(); ++cut) {
        std::istringstream damaged(full.substr(0, cut));
        EXPECT_THROW(core::loadModelBundle(damaged),
                     core::ModelFileError)
            << "prefix of " << cut << " bytes must not load";
    }
}

TEST(ModelFileV4Property, EverySingleBitFlipFailsCleanly)
{
    // Header, meta, directory, payloads AND the meta→region padding
    // run: no byte of a v4 file is flippable without the eager loader
    // noticing. (Padding is the subtle one — it sits outside both
    // checksums and is caught by the explicit zero check.)
    Rng rng(66);
    std::vector<core::SeLayerRecord> layers;
    layers.push_back({"a", {randomSeMatrix(rng)}});
    layers.push_back({"b", {randomSeMatrix(rng)}});
    core::quantizeBasisAtCompress(layers);
    const std::string full = saveV4String(layers);

    for (size_t byte = 0; byte < full.size(); ++byte) {
        std::string damaged = full;
        damaged[byte] ^= (char)(1u << rng.integer(0, 7));
        std::istringstream is(damaged);
        EXPECT_THROW(core::loadModelBundle(is), core::ModelFileError)
            << "bit flip in byte " << byte << " must not load";
    }
}

TEST(ModelFileV4Property, StructuralCorruptionBehindAValidChecksum)
{
    // craftedMatrix(3, 3): 3x3 Ce, every row live, codes 1..3 so
    // every column width is 2 bits — the packed width byte is
    // 0b00101010 = 0x2A (bits 6-7 are pad); 27-bit stream in 4 bytes
    // (5 pad bits); 3x4 basis. Fixed offsets into the 45-byte payload.
    std::vector<core::SeLayerRecord> layers{
        {"m", {craftedMatrix(3, 3)}}};
    core::quantizeBasisAtCompress(layers);
    const std::string good = saveV4String(layers);
    ASSERT_NO_THROW(loadFromString(good));

    const size_t widths_off = kV4MaskOff + 1;   // 1 mask byte
    const size_t stream_off = widths_off + 1;   // 1 packed width byte
    struct Case
    {
        const char *what;
        size_t off;
        std::function<char(char)> edit;
    };
    const Case cases[] = {
        {"dirty width-table padding", widths_off,
         [](char) { return (char)0xFF; }},
        {"non-minimal column width", widths_off,
         [](char) { return (char)0x2B; }},  // widths (3, 2, 2)
        {"negative basis scale", kV4ScaleOff + 3,
         [](char c) { return (char)(c | 0x80); }},
        {"mask tail bit set", kV4MaskOff,
         [](char c) { return (char)(c | 0x08); }},
        {"mask bit cleared (stream row miscount)", kV4MaskOff,
         [](char c) { return (char)(c & ~0x01); }},
        {"code outside the alphabet", kV4NumLevelsOff,
         [](char) { return (char)1; }},
        {"dirty bitstream padding", stream_off + 3,
         [](char c) { return (char)(c | 0x80); }},
    };
    for (const Case &c : cases) {
        const std::string bad = patchV4Piece(good, 0, c.off, c.edit);
        std::istringstream is(bad);
        EXPECT_THROW(core::loadModelBundle(is), core::ModelFileError)
            << c.what;
    }

    // A non-1 scale on an all-zero basis is non-canonical even
    // though it decodes to the same zeros.
    core::SeMatrix zb = craftedMatrix(3, 3);
    zb.basis = Tensor({3, 4});
    std::vector<core::SeLayerRecord> zb_layers{{"z", {zb}}};
    core::quantizeBasisAtCompress(zb_layers);
    const std::string zb_good = saveV4String(zb_layers);
    const std::string zb_bad = patchV4Piece(
        // 1.0f is 00 00 80 3F; turning 3F into 40 gives 4.0f.
        zb_good, 0, kV4ScaleOff + 3, [](char) { return (char)0x40; });
    std::istringstream is(zb_bad);
    EXPECT_THROW(core::loadModelBundle(is), core::ModelFileError);
}

TEST(ModelFileV4, ErrorsNameThePieceAndOffset)
{
    Rng rng(67);
    std::vector<core::SeLayerRecord> layers;
    layers.push_back({"alpha", {randomSeMatrix(rng)}});
    layers.push_back(
        {"beta", {randomSeMatrix(rng), randomSeMatrix(rng)}});
    core::quantizeBasisAtCompress(layers);
    const std::string good = saveV4String(layers);

    // Corrupt global piece 1 (beta's first) without fixing its
    // checksum: the load must name the record, the flat piece index
    // and the byte offset of the damage.
    namespace v4 = core::modelv4;
    const v4::Meta meta = v4::parseMeta(
        reinterpret_cast<const uint8_t *>(good.data()), good.size());
    ASSERT_EQ(meta.directory.size(), 3u);
    std::string bad = good;
    bad[(size_t)meta.directory[1].offset + 5] ^= 0x10;
    try {
        loadFromString(bad);
        FAIL() << "corrupt piece must not load";
    } catch (const core::ModelFileError &e) {
        const std::string msg = e.what();
        EXPECT_NE(msg.find("record 'beta'"), std::string::npos) << msg;
        EXPECT_NE(msg.find("piece 1 at offset " +
                           std::to_string(meta.directory[1].offset)),
                  std::string::npos)
            << msg;
    }
}

TEST(ModelFileV3, ErrorsNameTheRecordAndPiece)
{
    // The v3 loader wraps per-piece failures the same way: corrupt a
    // nibble (sign bit on a zero code) behind a fixed-up checksum and
    // the message must say which record and piece it sat in.
    std::vector<core::SeLayerRecord> layers{
        {"m", {craftedMatrix(3, 3)}}};
    std::stringstream ss;
    core::saveModelV3(ss, layers);
    const std::string bad =
        patchBody(ss.str(), maskOffset(1) + 1,
                  [](char) { return (char)0x88; });
    try {
        loadFromString(bad);
        FAIL() << "corrupt nibble must not load";
    } catch (const core::ModelFileError &e) {
        const std::string msg = e.what();
        EXPECT_NE(msg.find("record 'm' piece 0"), std::string::npos)
            << msg;
    }
}

// ==================================================== StreamedModel

TEST(StreamedModelTest, LazyOpenDecodesNoPieces)
{
    Rng rng(70);
    std::vector<core::SeLayerRecord> layers;
    layers.push_back({"a", {randomSeMatrix(rng)}});
    layers.push_back({"b", {randomSeMatrix(rng), randomSeMatrix(rng)}});
    core::quantizeBasisAtCompress(layers);
    const std::string path = "/tmp/se_model_v4_stream.sexm";
    writeFile(path,
              saveV4String(layers, {{"bias", randn({4}, rng)}}));

    core::StreamedModel sm(path);
    // O(meta) open: names and dense residual are up, no piece is.
    EXPECT_EQ(sm.decodedPieces(), 0u);
    EXPECT_EQ(sm.pieceCount(), 3u);
    ASSERT_EQ(sm.recordNames().size(), 2u);
    EXPECT_EQ(sm.recordNames()[1], "b");
    ASSERT_EQ(sm.dense().size(), 1u);
    EXPECT_EQ(sm.dense()[0].name, "bias");
    EXPECT_EQ(sm.decodedPieces(), 0u);

    // First touch decodes exactly that piece; a second touch is a
    // cache hit.
    expectBitIdentical(layers[0].pieces[0], sm.piece(0));
    EXPECT_EQ(sm.decodedPieces(), 1u);
    expectBitIdentical(layers[0].pieces[0], sm.piece(0));
    EXPECT_EQ(sm.decodedPieces(), 1u);

    // records() decodes the rest and groups per layer.
    auto recs = sm.records();
    EXPECT_EQ(sm.decodedPieces(), 3u);
    ASSERT_EQ(recs->size(), 2u);
    ASSERT_EQ((*recs)[1].pieces.size(), 2u);
    for (size_t l = 0; l < layers.size(); ++l)
        for (size_t p = 0; p < layers[l].pieces.size(); ++p)
            expectBitIdentical(layers[l].pieces[p],
                               (*recs)[l].pieces[p]);
    EXPECT_EQ(sm.records(), recs);  // cached, same vector
}

TEST(StreamedModelTest, AllBackendsServeIdenticalBits)
{
    Rng rng(71);
    std::vector<core::SeLayerRecord> layers;
    layers.push_back({"a", {randomSeMatrix(rng), randomSeMatrix(rng)}});
    core::quantizeBasisAtCompress(layers);
    const std::string bytes =
        saveV4String(layers, {{"gamma", randn({3}, rng)}});
    const std::string path = "/tmp/se_model_v4_backends.sexm";
    writeFile(path, bytes);

    const core::ModelBundle reference = loadFromString(bytes);
    for (const bool eager : {false, true})
        for (const bool force_read : {false, true}) {
            core::StreamedModel sm(path, {eager, force_read});
            if (force_read)
                EXPECT_FALSE(sm.mapped());
            const core::ModelBundle got = sm.bundle();
            ASSERT_EQ(got.records.size(), reference.records.size());
            for (size_t p = 0; p < 2; ++p)
                expectBitIdentical(reference.records[0].pieces[p],
                                   got.records[0].pieces[p]);
            ASSERT_EQ(got.dense.size(), 1u);
            EXPECT_EQ(std::memcmp(
                          got.dense[0].value.data(),
                          reference.dense[0].value.data(),
                          (size_t)reference.dense[0].value.size() *
                              sizeof(float)),
                      0);
        }
}

TEST(StreamedModelTest, PrefetchDecodesAWindow)
{
    Rng rng(72);
    std::vector<core::SeLayerRecord> layers;
    layers.push_back({"a", {randomSeMatrix(rng), randomSeMatrix(rng),
                            randomSeMatrix(rng)}});
    core::quantizeBasisAtCompress(layers);
    const std::string path = "/tmp/se_model_v4_prefetch.sexm";
    writeFile(path, saveV4String(layers));

    core::StreamedModel sm(path);
    EXPECT_EQ(sm.prefetch(0, 2), 2u);
    EXPECT_EQ(sm.decodedPieces(), 2u);
    EXPECT_EQ(sm.prefetch(0, 2), 0u);  // already resident
    // Over-asking clamps to the directory instead of throwing.
    EXPECT_EQ(sm.prefetch(1, 100), 1u);
    EXPECT_EQ(sm.decodedPieces(), 3u);
    EXPECT_EQ(sm.prefetch(99, 5), 0u);
}

TEST(StreamedModelTest, PrefetchIsOverflowSafe)
{
    Rng rng(75);
    std::vector<core::SeLayerRecord> layers;
    layers.push_back({"a", {randomSeMatrix(rng), randomSeMatrix(rng),
                            randomSeMatrix(rng)}});
    core::quantizeBasisAtCompress(layers);
    const std::string path = "/tmp/se_model_v4_prefetch_ovf.sexm";
    writeFile(path, saveV4String(layers));

    core::StreamedModel sm(path);
    // first + count wraps size_t; the old bound check silently
    // prefetched nothing. The clamp decodes the whole tail instead.
    EXPECT_EQ(sm.prefetch(1, SIZE_MAX), 2u);
    EXPECT_EQ(sm.decodedPieces(), 2u);
    EXPECT_EQ(sm.prefetch(0, SIZE_MAX), 1u);
    EXPECT_EQ(sm.decodedPieces(), 3u);
    EXPECT_EQ(sm.prefetch(0, 0), 0u);
    EXPECT_EQ(sm.prefetch(SIZE_MAX, SIZE_MAX), 0u);
}

TEST(StreamedModelTest, PrefetchNamesTheCorruptMidRangePiece)
{
    Rng rng(76);
    std::vector<core::SeLayerRecord> layers;
    layers.push_back({"a", {randomSeMatrix(rng), randomSeMatrix(rng),
                            randomSeMatrix(rng)}});
    core::quantizeBasisAtCompress(layers);
    const std::string good = saveV4String(layers);

    namespace v4 = core::modelv4;
    const v4::Meta meta = v4::parseMeta(
        reinterpret_cast<const uint8_t *>(good.data()), good.size());
    std::string bad = good;
    bad[(size_t)meta.directory[1].offset + 7] ^= 0x04;
    const std::string path = "/tmp/se_model_v4_prefetch_bad.sexm";
    writeFile(path, bad);

    core::StreamedModel sm(path);
    EXPECT_EQ(sm.prefetch(0, 1), 1u);  // piece 0 is intact
    try {
        sm.prefetch(0, sm.pieceCount());
        FAIL() << "corrupt mid-range piece did not throw";
    } catch (const core::ModelFileError &e) {
        // The typed error names the failing piece, not just
        // whatever the underlying decode said.
        EXPECT_NE(std::string(e.what()).find("prefetch: piece 1"),
                  std::string::npos)
            << e.what();
    }
    // The failure is not sticky for intact pieces past it.
    EXPECT_EQ(sm.prefetch(2, 1), 1u);
}

TEST(StreamedModelTest, CorruptPieceFailsAtFirstTouch)
{
    Rng rng(73);
    std::vector<core::SeLayerRecord> layers;
    layers.push_back({"a", {randomSeMatrix(rng), randomSeMatrix(rng),
                            randomSeMatrix(rng)}});
    core::quantizeBasisAtCompress(layers);
    const std::string good = saveV4String(layers);

    namespace v4 = core::modelv4;
    const v4::Meta meta = v4::parseMeta(
        reinterpret_cast<const uint8_t *>(good.data()), good.size());
    std::string bad = good;
    bad[(size_t)meta.directory[1].offset + 7] ^= 0x04;
    const std::string path = "/tmp/se_model_v4_corrupt.sexm";
    writeFile(path, bad);

    // Lazy open only validates meta, so it succeeds; the damage is
    // contained to the piece that carries it.
    core::StreamedModel sm(path);
    EXPECT_NO_THROW(sm.piece(0));
    try {
        sm.piece(1);
        FAIL() << "corrupt piece must not decode";
    } catch (const core::ModelFileError &e) {
        const std::string msg = e.what();
        EXPECT_NE(msg.find("piece 1 at offset " +
                           std::to_string(meta.directory[1].offset)),
                  std::string::npos)
            << msg;
    }
    EXPECT_NO_THROW(sm.piece(2));
    EXPECT_EQ(sm.decodedPieces(), 2u);
    EXPECT_THROW(sm.records(), core::ModelFileError);

    // The eager open refuses the same file up front.
    EXPECT_THROW(core::StreamedModel(path, {true, false}),
                 core::ModelFileError);
}

TEST(StreamedModelTest, TruncatedFileFailsAtOpen)
{
    Rng rng(74);
    std::vector<core::SeLayerRecord> layers{
        {"a", {randomSeMatrix(rng)}}};
    core::quantizeBasisAtCompress(layers);
    const std::string full = saveV4String(layers);
    const std::string path = "/tmp/se_model_v4_trunc.sexm";

    for (const size_t keep :
         {full.size() - 1, full.size() / 2, (size_t)40, (size_t)0}) {
        writeFile(path, full.substr(0, keep));
        EXPECT_THROW(core::StreamedModel sm(path),
                     core::ModelFileError)
            << keep << " bytes kept";
    }
}

TEST(StreamedModelTest, RefusesNonStreamingFormats)
{
    Rng rng(75);
    std::vector<core::SeLayerRecord> layers{
        {"a", {randomSeMatrix(rng)}}};
    std::stringstream v3;
    core::saveModelV3(v3, layers);
    const std::string path = "/tmp/se_model_v4_wrongver.sexm";
    writeFile(path, v3.str());
    try {
        core::StreamedModel sm(path);
        FAIL() << "a v3 file is not streamable";
    } catch (const core::ModelFileError &e) {
        EXPECT_NE(std::string(e.what())
                      .find("not a v4 streaming bundle"),
                  std::string::npos)
            << e.what();
    }
}

TEST(StreamedModelTest, EagerOpenValidatesPadding)
{
    // The meta→region padding run sits outside both checksums; only
    // the eager open (like the eager loadModelBundle) walks it.
    std::vector<core::SeLayerRecord> layers;
    layers.push_back({"a", {craftedMatrix(3, 3)}});
    layers.push_back({"b", {craftedMatrix(4, 3)}});
    core::quantizeBasisAtCompress(layers);
    const std::string good = saveV4String(layers);

    namespace v4 = core::modelv4;
    const v4::Meta meta = v4::parseMeta(
        reinterpret_cast<const uint8_t *>(good.data()), good.size());
    const size_t meta_end =
        v4::kHeaderBytes + (size_t)meta.metaBytes;
    const size_t pad_at = meta_end;
    ASSERT_LT(pad_at, (size_t)meta.directory[0].offset)
        << "fixture must leave padding before the piece region";
    std::string bad = good;
    bad[pad_at] = (char)0x5A;
    const std::string path = "/tmp/se_model_v4_pad.sexm";
    writeFile(path, bad);

    EXPECT_THROW(core::StreamedModel(path, {true, false}),
                 core::ModelFileError);
    // The lazy open never reads those bytes, and the pieces it does
    // read are intact — laziness narrows coverage to what is used.
    core::StreamedModel lazy(path);
    expectBitIdentical(layers[0].pieces[0], lazy.piece(0));
    expectBitIdentical(layers[1].pieces[0], lazy.piece(1));
}

TEST(ModelRecordsV4, CompressQuantizeSaveLoadInstallRoundTrip)
{
    core::SeOptions se_opts;
    se_opts.vectorThreshold = 0.01;
    core::ApplyOptions apply_opts;

    // Compress net A in place, then pin its bases to the int8 grid —
    // the compress-time step that makes the v4 file exact.
    auto a = makeCnn(31);
    auto compressed = core::compressToRecords(*a, se_opts, apply_opts);
    core::quantizeBasisAtCompress(*a, compressed, se_opts, apply_opts);

    auto bundle = compressed.bundle();
    std::stringstream ss;
    core::saveModelV4(ss, bundle.records, bundle.dense);
    const core::ModelBundle shipped = loadFromString(ss.str());

    auto b = makeCnn(31);
    core::installModelBundle(*b, shipped, se_opts, apply_opts);
    auto wa = collectWeights(*a), wb = collectWeights(*b);
    ASSERT_EQ(wa.size(), wb.size());
    for (size_t i = 0; i < wa.size(); ++i)
        EXPECT_EQ(std::memcmp(wa[i]->data(), wb[i]->data(),
                              (size_t)wa[i]->size() * sizeof(float)),
                  0)
            << "weight " << i;
}

} // namespace
} // namespace se
