/**
 * @file
 * Tests of the SmartExchange model-file format: exact round-trips of
 * coefficients (via their power-of-2 codes), basis matrices and
 * metadata; bundle save/load; and corruption detection.
 */

#include <gtest/gtest.h>

#include <sstream>

#include "base/random.hh"
#include "core/apply.hh"
#include "core/model_file.hh"
#include "linalg/linalg.hh"
#include "nn/layers.hh"

namespace se {
namespace {

core::SeMatrix
makeMatrix(uint64_t seed, double sparsity = 0.3)
{
    Rng rng(seed);
    Tensor w = randn({48, 3}, rng, 0.0f, 0.1f);
    core::SeOptions opts;
    opts.minVectorSparsity = sparsity;
    return core::decomposeMatrix(w, opts);
}

TEST(ModelFile, SeMatrixExactRoundTrip)
{
    auto m = makeMatrix(1);
    std::stringstream ss;
    core::saveSeMatrix(ss, m);
    auto back = core::loadSeMatrix(ss);

    ASSERT_EQ(back.ce.dim(0), m.ce.dim(0));
    ASSERT_EQ(back.ce.dim(1), m.ce.dim(1));
    for (int64_t i = 0; i < m.ce.size(); ++i)
        EXPECT_FLOAT_EQ(back.ce[i], m.ce[i]) << "ce[" << i << "]";
    for (int64_t i = 0; i < m.basis.size(); ++i)
        EXPECT_FLOAT_EQ(back.basis[i], m.basis[i]);
    EXPECT_EQ(back.alphabet.expMax, m.alphabet.expMax);
    EXPECT_EQ(back.alphabet.numLevels, m.alphabet.numLevels);
    EXPECT_EQ(back.iterations, m.iterations);
    EXPECT_DOUBLE_EQ(back.reconRelError, m.reconRelError);
}

TEST(ModelFile, ReconstructionIdenticalAfterRoundTrip)
{
    auto m = makeMatrix(2, 0.5);
    std::stringstream ss;
    core::saveSeMatrix(ss, m);
    auto back = core::loadSeMatrix(ss);
    EXPECT_LT(linalg::frobDiff(m.reconstruct(), back.reconstruct()),
              1e-6);
}

TEST(ModelFile, BundleRoundTrip)
{
    std::vector<core::SeLayerRecord> layers;
    layers.push_back({"conv1", {makeMatrix(3), makeMatrix(4)}});
    layers.push_back({"conv2", {makeMatrix(5)}});

    std::stringstream ss;
    core::saveModel(ss, layers);
    auto back = core::loadModel(ss);

    ASSERT_EQ(back.size(), 2u);
    EXPECT_EQ(back[0].name, "conv1");
    EXPECT_EQ(back[0].pieces.size(), 2u);
    EXPECT_EQ(back[1].name, "conv2");
    for (int64_t i = 0; i < layers[0].pieces[1].ce.size(); ++i)
        EXPECT_FLOAT_EQ(back[0].pieces[1].ce[i],
                        layers[0].pieces[1].ce[i]);
}

TEST(ModelFile, FileRoundTripOnDisk)
{
    std::vector<core::SeLayerRecord> layers;
    layers.push_back({"layer", {makeMatrix(6)}});
    const std::string path = "/tmp/se_model_test.sexm";
    core::saveModelFile(path, layers);
    auto back = core::loadModelFile(path);
    ASSERT_EQ(back.size(), 1u);
    EXPECT_EQ(back[0].name, "layer");
}

TEST(ModelFile, RejectsBadMagic)
{
    std::stringstream ss;
    ss << "this is not a model file at all";
    EXPECT_DEATH(core::loadModel(ss), "model file");
}

TEST(ModelFile, WholeConvLayerRoundTrip)
{
    // Decompose a real conv layer, ship it, rebuild the weights from
    // the loaded form: same tensor as rebuilding from the original.
    Rng rng(7);
    nn::Conv2d conv(4, 6, 3, 1, 1, 1, rng, false);
    core::SeOptions opts;
    opts.minVectorSparsity = 0.3;
    auto pieces = core::decomposeConvWeight(conv.weightTensor(), opts,
                                            core::ApplyOptions{});
    std::stringstream ss;
    core::saveModel(ss, {{"conv", pieces}});
    auto back = core::loadModel(ss);
    ASSERT_EQ(back[0].pieces.size(), pieces.size());
    for (size_t i = 0; i < pieces.size(); ++i)
        EXPECT_LT(linalg::frobDiff(pieces[i].reconstruct(),
                                   back[0].pieces[i].reconstruct()),
                  1e-6);
}

TEST(ModelFile, StorageIsCompact)
{
    // The on-disk size must be far below FP32 for a sparse layer.
    auto m = makeMatrix(8, 0.6);
    std::stringstream ss;
    core::saveSeMatrix(ss, m);
    const int64_t file_bytes = (int64_t)ss.str().size();
    const int64_t fp32_bytes = m.ce.dim(0) * m.basis.dim(1) * 4;
    EXPECT_LT(file_bytes, fp32_bytes);
}

} // namespace
} // namespace se
