/**
 * @file
 * Tests of the SmartExchange model-file format: exact round-trips of
 * coefficients (via their power-of-2 codes), basis matrices and
 * metadata; bundle save/load; property/fuzz coverage (random
 * matrices, truncated prefixes, single-bit corruption — every damaged
 * stream must raise ModelFileError, never crash or silently
 * mis-load); and the nn <-> record glue (compressToRecords /
 * installLayerRecords).
 */

#include <gtest/gtest.h>

#include <cstring>
#include <sstream>

#include "base/random.hh"
#include "core/apply.hh"
#include "core/model_file.hh"
#include "linalg/linalg.hh"
#include "nn/layers.hh"

namespace se {
namespace {

core::SeMatrix
makeMatrix(uint64_t seed, double sparsity = 0.3)
{
    Rng rng(seed);
    Tensor w = randn({48, 3}, rng, 0.0f, 0.1f);
    core::SeOptions opts;
    opts.minVectorSparsity = sparsity;
    return core::decomposeMatrix(w, opts);
}

/**
 * A random SmartExchange-form matrix built directly (no ALS), so the
 * property tests can sweep many shapes/alphabets cheaply. Every
 * coefficient is 0 or +-2^p with p in the alphabet — exactly what a
 * legal file can carry.
 */
core::SeMatrix
randomSeMatrix(Rng &rng)
{
    core::SeMatrix m;
    const int64_t rows = rng.integer(1, 40);
    const int64_t rank = rng.integer(1, 6);
    const int64_t cols = rng.integer(1, 6);
    m.alphabet.expMax = (int)rng.integer(-8, 8);
    m.alphabet.numLevels = (int)rng.integer(1, 7);
    m.iterations = (int)rng.integer(0, 30);
    m.reconRelError = rng.uniform(0.0f, 0.5f);
    m.ce = Tensor({rows, rank});
    for (int64_t i = 0; i < m.ce.size(); ++i) {
        if (rng.chance(0.4))
            continue;  // zero coefficient
        const int exp = (int)rng.integer(m.alphabet.expMin(),
                                         m.alphabet.expMax);
        const float mag = std::ldexp(1.0f, exp);
        m.ce[i] = rng.chance(0.5) ? mag : -mag;
    }
    m.basis = randn({rank, cols}, rng, 0.0f, 1.0f);
    return m;
}

void
expectBitIdentical(const core::SeMatrix &a, const core::SeMatrix &b)
{
    ASSERT_EQ(a.ce.shape(), b.ce.shape());
    ASSERT_EQ(a.basis.shape(), b.basis.shape());
    EXPECT_EQ(std::memcmp(a.ce.data(), b.ce.data(),
                          (size_t)a.ce.size() * sizeof(float)),
              0);
    EXPECT_EQ(std::memcmp(a.basis.data(), b.basis.data(),
                          (size_t)a.basis.size() * sizeof(float)),
              0);
    EXPECT_EQ(a.alphabet.expMax, b.alphabet.expMax);
    EXPECT_EQ(a.alphabet.numLevels, b.alphabet.numLevels);
    EXPECT_EQ(a.iterations, b.iterations);
    EXPECT_DOUBLE_EQ(a.reconRelError, b.reconRelError);
}

TEST(ModelFile, SeMatrixExactRoundTrip)
{
    auto m = makeMatrix(1);
    std::stringstream ss;
    core::saveSeMatrix(ss, m);
    auto back = core::loadSeMatrix(ss);
    expectBitIdentical(m, back);
}

TEST(ModelFile, ReconstructionIdenticalAfterRoundTrip)
{
    auto m = makeMatrix(2, 0.5);
    std::stringstream ss;
    core::saveSeMatrix(ss, m);
    auto back = core::loadSeMatrix(ss);
    EXPECT_LT(linalg::frobDiff(m.reconstruct(), back.reconstruct()),
              1e-6);
}

TEST(ModelFile, BundleRoundTrip)
{
    std::vector<core::SeLayerRecord> layers;
    layers.push_back({"conv1", {makeMatrix(3), makeMatrix(4)}});
    layers.push_back({"conv2", {makeMatrix(5)}});

    std::stringstream ss;
    core::saveModel(ss, layers);
    auto back = core::loadModel(ss);

    ASSERT_EQ(back.size(), 2u);
    EXPECT_EQ(back[0].name, "conv1");
    EXPECT_EQ(back[0].pieces.size(), 2u);
    EXPECT_EQ(back[1].name, "conv2");
    for (int64_t i = 0; i < layers[0].pieces[1].ce.size(); ++i)
        EXPECT_FLOAT_EQ(back[0].pieces[1].ce[i],
                        layers[0].pieces[1].ce[i]);
}

TEST(ModelFile, FileRoundTripOnDisk)
{
    std::vector<core::SeLayerRecord> layers;
    layers.push_back({"layer", {makeMatrix(6)}});
    const std::string path = "/tmp/se_model_test.sexm";
    core::saveModelFile(path, layers);
    auto back = core::loadModelFile(path);
    ASSERT_EQ(back.size(), 1u);
    EXPECT_EQ(back[0].name, "layer");
}

TEST(ModelFile, RejectsBadMagic)
{
    std::stringstream ss;
    ss << "this is not a model file at all";
    EXPECT_THROW(core::loadModel(ss), core::ModelFileError);
}

TEST(ModelFile, WholeConvLayerRoundTrip)
{
    // Decompose a real conv layer, ship it, rebuild the weights from
    // the loaded form: same tensor as rebuilding from the original.
    Rng rng(7);
    nn::Conv2d conv(4, 6, 3, 1, 1, 1, rng, false);
    core::SeOptions opts;
    opts.minVectorSparsity = 0.3;
    auto pieces = core::decomposeConvWeight(conv.weightTensor(), opts,
                                            core::ApplyOptions{});
    std::stringstream ss;
    core::saveModel(ss, {{"conv", pieces}});
    auto back = core::loadModel(ss);
    ASSERT_EQ(back[0].pieces.size(), pieces.size());
    for (size_t i = 0; i < pieces.size(); ++i)
        EXPECT_LT(linalg::frobDiff(pieces[i].reconstruct(),
                                   back[0].pieces[i].reconstruct()),
                  1e-6);
}

TEST(ModelFile, StorageIsCompact)
{
    // The on-disk size must be far below FP32 for a sparse layer.
    auto m = makeMatrix(8, 0.6);
    std::stringstream ss;
    core::saveSeMatrix(ss, m);
    const int64_t file_bytes = (int64_t)ss.str().size();
    const int64_t fp32_bytes = m.ce.dim(0) * m.basis.dim(1) * 4;
    EXPECT_LT(file_bytes, fp32_bytes);
}

// ------------------------------------------------ property/fuzz wall

TEST(ModelFileProperty, RandomMatricesRoundTripExactly)
{
    Rng rng(1234);
    for (int trial = 0; trial < 60; ++trial) {
        auto m = randomSeMatrix(rng);
        std::stringstream ss;
        core::saveSeMatrix(ss, m);
        auto back = core::loadSeMatrix(ss);
        expectBitIdentical(m, back);
    }
}

TEST(ModelFileProperty, RandomBundlesRoundTripExactly)
{
    Rng rng(99);
    for (int trial = 0; trial < 10; ++trial) {
        std::vector<core::SeLayerRecord> layers;
        const int64_t n = rng.integer(0, 5);
        for (int64_t l = 0; l < n; ++l) {
            core::SeLayerRecord rec;
            rec.name = "layer_" + std::to_string(trial) + "_" +
                       std::to_string(l);
            const int64_t pieces = rng.integer(1, 4);
            for (int64_t p = 0; p < pieces; ++p)
                rec.pieces.push_back(randomSeMatrix(rng));
            layers.push_back(std::move(rec));
        }
        std::stringstream ss;
        core::saveModel(ss, layers);
        auto back = core::loadModel(ss);
        ASSERT_EQ(back.size(), layers.size());
        for (size_t l = 0; l < layers.size(); ++l) {
            EXPECT_EQ(back[l].name, layers[l].name);
            ASSERT_EQ(back[l].pieces.size(), layers[l].pieces.size());
            for (size_t p = 0; p < layers[l].pieces.size(); ++p)
                expectBitIdentical(layers[l].pieces[p],
                                   back[l].pieces[p]);
        }
    }
}

TEST(ModelFileProperty, EveryTruncatedPrefixFailsCleanly)
{
    Rng rng(7);
    std::vector<core::SeLayerRecord> layers;
    layers.push_back({"a", {randomSeMatrix(rng)}});
    layers.push_back({"b", {randomSeMatrix(rng), randomSeMatrix(rng)}});
    std::stringstream ss;
    core::saveModel(ss, layers);
    const std::string full = ss.str();

    for (size_t cut = 0; cut < full.size(); ++cut) {
        std::istringstream damaged(full.substr(0, cut),
                                   std::ios::binary);
        EXPECT_THROW(core::loadModel(damaged), core::ModelFileError)
            << "prefix of " << cut << "/" << full.size()
            << " bytes was accepted";
    }
}

TEST(ModelFileProperty, EverySingleBitFlipFailsCleanly)
{
    // The header carries the body size and an FNV-1a checksum, so NO
    // single-bit corruption anywhere in the stream may load — not as
    // the original bundle, not as a different one.
    Rng rng(8);
    std::vector<core::SeLayerRecord> layers;
    layers.push_back({"layer", {randomSeMatrix(rng)}});
    std::stringstream ss;
    core::saveModel(ss, layers);
    const std::string full = ss.str();

    for (size_t byte = 0; byte < full.size(); ++byte) {
        const int bit = (int)rng.integer(0, 7);
        std::string damaged = full;
        damaged[byte] = (char)(damaged[byte] ^ (1 << bit));
        std::istringstream is(damaged, std::ios::binary);
        EXPECT_THROW(core::loadModel(is), core::ModelFileError)
            << "bit " << bit << " of byte " << byte
            << " flipped and the bundle still loaded";
    }
}

TEST(ModelFileProperty, SignBitOnZeroCoefCodeRejected)
{
    // Byte 0x80 (sign bit set, exponent code 0) is not a legal
    // coefficient encoding — it must throw, not decode to a value
    // below the alphabet. The first coefficient byte sits right
    // after the fixed header: 3x int64 dims + 3x int32 + 1 double.
    auto m = makeMatrix(10);
    std::stringstream ss;
    core::saveSeMatrix(ss, m);
    std::string bytes = ss.str();
    const size_t first_coef = 3 * 8 + 3 * 4 + 8;
    ASSERT_GT(bytes.size(), first_coef);
    bytes[first_coef] = (char)0x80;
    std::istringstream is(bytes, std::ios::binary);
    EXPECT_THROW(core::loadSeMatrix(is), core::ModelFileError);
}

TEST(ModelFileProperty, GarbageStreamsNeverCrash)
{
    Rng rng(9);
    for (int trial = 0; trial < 40; ++trial) {
        const int64_t len = rng.integer(0, 512);
        std::string junk((size_t)len, '\0');
        for (auto &c : junk)
            c = (char)rng.integer(0, 255);
        std::istringstream is(junk, std::ios::binary);
        EXPECT_THROW(core::loadModel(is), core::ModelFileError);
    }
}

// ------------------------------------------------ nn <-> record glue

/** A small CNN exercising conv KxK, 1x1 and FC reshape rules. */
std::unique_ptr<nn::Sequential>
makeCnn(uint64_t seed)
{
    Rng rng(seed);
    auto net = std::make_unique<nn::Sequential>();
    net->add<nn::Conv2d>(3, 8, 3, 1, 1, 1, rng, false);
    net->add<nn::BatchNorm2d>(8);
    net->add<nn::Conv2d>(8, 16, 1, 1, 0, 1, rng, false);
    net->add<nn::Linear>(64, 10, rng, false);
    return net;
}

std::vector<const Tensor *>
collectWeights(nn::Sequential &net)
{
    std::vector<const Tensor *> ws;
    net.visit([&](nn::Layer &l) {
        if (auto *c = dynamic_cast<nn::Conv2d *>(&l))
            ws.push_back(&c->weightTensor());
        else if (auto *f = dynamic_cast<nn::Linear *>(&l))
            ws.push_back(&f->weightTensor());
    });
    return ws;
}

TEST(ModelRecords, CompressSaveLoadInstallRoundTrip)
{
    core::SeOptions se_opts;
    se_opts.vectorThreshold = 0.01;
    core::ApplyOptions apply_opts;

    // Compress net A in place, keeping the shippable records.
    auto a = makeCnn(21);
    auto compressed = core::compressToRecords(*a, se_opts, apply_opts);
    EXPECT_FALSE(compressed.records.empty());
    EXPECT_GT(compressed.report.compressionRate(), 1.0);

    // Ship through the binary format.
    std::stringstream ss;
    core::saveModel(ss, compressed.records);
    auto shipped = core::loadModel(ss);

    // Install into a fresh instance of the same architecture: the
    // dense weights must equal net A's bit for bit.
    auto b = makeCnn(21);
    auto report =
        core::installLayerRecords(*b, shipped, se_opts, apply_opts);

    auto wa = collectWeights(*a), wb = collectWeights(*b);
    ASSERT_EQ(wa.size(), wb.size());
    for (size_t i = 0; i < wa.size(); ++i)
        EXPECT_EQ(std::memcmp(wa[i]->data(), wb[i]->data(),
                              (size_t)wa[i]->size() * sizeof(float)),
                  0)
            << "weight " << i;
    EXPECT_EQ(report.compressedBits(),
              compressed.report.compressedBits());
}

TEST(ModelRecords, InstallRejectsWrongArchitecture)
{
    core::SeOptions se_opts;
    se_opts.vectorThreshold = 0.01;
    auto a = makeCnn(22);
    auto compressed =
        core::compressToRecords(*a, se_opts, core::ApplyOptions{});

    // Different conv widths -> different slice geometry.
    Rng rng(23);
    auto wrong = std::make_unique<nn::Sequential>();
    wrong->add<nn::Conv2d>(3, 4, 3, 1, 1, 1, rng, false);
    wrong->add<nn::Linear>(64, 10, rng, false);
    EXPECT_THROW(core::installLayerRecords(*wrong, compressed.records,
                                           se_opts,
                                           core::ApplyOptions{}),
                 core::ModelFileError);
}

TEST(ModelRecords, InstallRejectsExtraRecords)
{
    core::SeOptions se_opts;
    se_opts.vectorThreshold = 0.01;
    auto a = makeCnn(24);
    auto compressed =
        core::compressToRecords(*a, se_opts, core::ApplyOptions{});
    compressed.records.push_back({"ghost", {makeMatrix(25)}});

    auto b = makeCnn(24);
    EXPECT_THROW(core::installLayerRecords(*b, compressed.records,
                                           se_opts,
                                           core::ApplyOptions{}),
                 core::ModelFileError);
}

} // namespace
} // namespace se
