/**
 * @file
 * Tests of the instruction-driven program simulator: timeline
 * consistency, overlap of loads with compute (double buffering),
 * agreement with the analytical per-layer model, and behaviour across
 * the benchmark workloads.
 */

#include <gtest/gtest.h>

#include "accel/annotate.hh"
#include "accel/program_sim.hh"
#include "accel/smartexchange_accel.hh"

namespace se {
namespace {

using accel::ProgramStats;
using accel::simulateProgram;
using compiler::compileNetwork;
using models::ModelId;

ProgramStats
runModel(ModelId id)
{
    auto w = accel::annotatedWorkload(id);
    auto cfg = sim::ArrayConfig::bitSerialDefault();
    auto prog = compileNetwork(w, cfg);
    return simulateProgram(prog, w, cfg);
}

TEST(ProgramSim, TimelineConsistency)
{
    auto st = runModel(ModelId::ResNet164);
    EXPECT_GT(st.totalCycles, 0);
    // Busy time on each resource cannot exceed the wall clock.
    EXPECT_LE(st.dramBusyCycles, st.totalCycles);
    EXPECT_LE(st.computeBusyCycles, st.totalCycles);
    EXPECT_GT(st.computeUtilization(), 0.0);
    EXPECT_LE(st.computeUtilization(), 1.0);
    EXPECT_LE(st.dramUtilization(), 1.0);
}

TEST(ProgramSim, OverlapBeatsSerialExecution)
{
    // With two resources and double buffering the wall clock must be
    // below the serial sum of all load + compute durations.
    auto st = runModel(ModelId::ResNet50);
    EXPECT_LT(st.totalCycles,
              st.dramBusyCycles + st.computeBusyCycles);
}

TEST(ProgramSim, PerLayerCyclesCoverEveryLayer)
{
    auto w = accel::annotatedWorkload(ModelId::VGG19);
    auto cfg = sim::ArrayConfig::bitSerialDefault();
    auto prog = compileNetwork(w, cfg);
    auto st = simulateProgram(prog, w, cfg);
    ASSERT_EQ(st.layerCycles.size(), w.layers.size());
    for (size_t i = 0; i < st.layerCycles.size(); ++i)
        EXPECT_GT(st.layerCycles[i], 0) << "layer " << i;
}

TEST(ProgramSim, AgreesWithAnalyticalModelWithinBand)
{
    // The program simulator and the per-layer analytical model count
    // the same compute; their totals must agree within a small factor
    // (the program model adds tile-boundary and dependency effects).
    for (ModelId id : {ModelId::ResNet50, ModelId::VGG19,
                       ModelId::MobileNetV2}) {
        auto w = accel::annotatedWorkload(id);
        auto cfg = sim::ArrayConfig::bitSerialDefault();
        auto prog = compileNetwork(w, cfg);
        auto st = simulateProgram(prog, w, cfg);
        accel::SmartExchangeAccel acc;
        auto ref = acc.runNetwork(w, true);
        const double ratio =
            (double)st.totalCycles / (double)ref.cycles;
        EXPECT_GT(ratio, 0.3) << models::modelName(id);
        EXPECT_LT(ratio, 3.0) << models::modelName(id);
    }
}

TEST(ProgramSim, MismatchedWorkloadDies)
{
    auto w = accel::annotatedWorkload(ModelId::VGG19);
    auto cfg = sim::ArrayConfig::bitSerialDefault();
    auto prog = compileNetwork(w, cfg);
    w.layers.pop_back();
    EXPECT_DEATH(simulateProgram(prog, w, cfg), "mismatch");
}

TEST(ProgramSim, HigherSparsityShortensExecution)
{
    auto w = accel::annotatedWorkload(ModelId::ResNet50);
    auto cfg = sim::ArrayConfig::bitSerialDefault();
    auto prog = compileNetwork(w, cfg);
    auto base = simulateProgram(prog, w, cfg);
    for (auto &l : w.layers)
        l.weightVectorSparsity =
            std::min(0.95, l.weightVectorSparsity + 0.3);
    auto sparse = simulateProgram(prog, w, cfg);
    EXPECT_LT(sparse.totalCycles, base.totalCycles);
}

TEST(ProgramSim, StallsAreBounded)
{
    auto st = runModel(ModelId::EfficientNetB0);
    // Data-dependency stalls exist but must not dominate.
    EXPECT_LT((double)st.stallCycles, 0.9 * (double)st.totalCycles);
}

} // namespace
} // namespace se
