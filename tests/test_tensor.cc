/**
 * @file
 * Unit tests for the Tensor substrate.
 */

#include <gtest/gtest.h>

#include "base/random.hh"
#include "tensor/tensor.hh"

namespace se {
namespace {

TEST(Tensor, ShapeAndSize)
{
    Tensor t({2, 3, 4});
    EXPECT_EQ(t.ndim(), 3);
    EXPECT_EQ(t.size(), 24);
    EXPECT_EQ(t.dim(0), 2);
    EXPECT_EQ(t.dim(2), 4);
    EXPECT_FALSE(t.empty());
    EXPECT_TRUE(Tensor().empty());
}

TEST(Tensor, FillConstructor)
{
    Tensor t({3, 3}, 2.5f);
    for (int64_t i = 0; i < t.size(); ++i)
        EXPECT_FLOAT_EQ(t[i], 2.5f);
}

TEST(Tensor, ValueConstructorChecksCount)
{
    Tensor t({2, 2}, std::vector<float>{1, 2, 3, 4});
    EXPECT_FLOAT_EQ(t.at(0, 0), 1.0f);
    EXPECT_FLOAT_EQ(t.at(1, 1), 4.0f);
    EXPECT_DEATH(Tensor({2, 2}, std::vector<float>{1, 2, 3}), "value");
}

TEST(Tensor, RowMajorIndexing2D)
{
    Tensor t({2, 3});
    t.at(1, 2) = 7.0f;
    EXPECT_FLOAT_EQ(t[1 * 3 + 2], 7.0f);
}

TEST(Tensor, RowMajorIndexing4D)
{
    Tensor t({2, 3, 4, 5});
    t.at(1, 2, 3, 4) = 9.0f;
    EXPECT_FLOAT_EQ(t[((1 * 3 + 2) * 4 + 3) * 5 + 4], 9.0f);
}

TEST(Tensor, ReshapePreservesData)
{
    Tensor t({2, 6});
    for (int64_t i = 0; i < t.size(); ++i)
        t[i] = (float)i;
    Tensor r = t.reshaped({3, 4});
    EXPECT_EQ(r.dim(0), 3);
    for (int64_t i = 0; i < r.size(); ++i)
        EXPECT_FLOAT_EQ(r[i], (float)i);
    EXPECT_DEATH(t.reshaped({5, 5}), "reshape");
}

TEST(Tensor, ApplyAndSum)
{
    Tensor t({4}, 1.0f);
    t.apply([](float v) { return v * 3.0f; });
    EXPECT_DOUBLE_EQ(t.sum(), 12.0);
}

TEST(Tensor, Eye)
{
    Tensor i = eye(3);
    for (int64_t r = 0; r < 3; ++r)
        for (int64_t c = 0; c < 3; ++c)
            EXPECT_FLOAT_EQ(i.at(r, c), r == c ? 1.0f : 0.0f);
}

TEST(Tensor, RandnStatistics)
{
    Rng rng(3);
    Tensor t = randn({1000}, rng, 0.0f, 1.0f);
    double s = 0.0;
    for (int64_t i = 0; i < t.size(); ++i)
        s += t[i];
    EXPECT_NEAR(s / (double)t.size(), 0.0, 0.15);
}

TEST(Tensor, RanduRange)
{
    Rng rng(3);
    Tensor t = randu({500}, rng, -1.0f, 1.0f);
    for (int64_t i = 0; i < t.size(); ++i) {
        EXPECT_GE(t[i], -1.0f);
        EXPECT_LT(t[i], 1.0f);
    }
}

TEST(Tensor, BoundsCheckedAt)
{
    Tensor t({4});
    EXPECT_DEATH(t.at((int64_t)4), "out of range");
}

} // namespace
} // namespace se
