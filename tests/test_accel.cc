/**
 * @file
 * Tests of the accelerator models: per-layer accounting sanity, the
 * relative orderings the paper reports (SmartExchange wins energy and
 * latency; sparse baselines beat DianNao; ablation switches behave),
 * and shape checks on the seven benchmark workloads.
 */

#include <gtest/gtest.h>

#include "accel/annotate.hh"
#include "accel/baselines.hh"
#include "accel/smartexchange_accel.hh"

namespace se {
namespace {

using accel::BitPragmatic;
using accel::CambriconX;
using accel::DianNao;
using accel::Scnn;
using accel::SeAccelOptions;
using accel::SmartExchangeAccel;
using models::ModelId;
using sim::Component;
using sim::LayerKind;
using sim::LayerShape;

LayerShape
sparseConvLayer()
{
    LayerShape l;
    l.kind = LayerKind::Conv;
    l.c = 128;
    l.m = 256;
    l.h = l.w = 28;
    l.r = l.s = 3;
    l.pad = 1;
    l.weightVectorSparsity = 0.5;
    l.weightElementSparsity = 0.6;
    l.channelSparsity = 0.1;
    l.actValueSparsity = 0.45;
    l.actVectorSparsity = 0.08;
    l.actAvgBoothDigits = 1.0;
    l.actAvgEssentialBits = 1.2;
    return l;
}

TEST(DianNao, EnergyPositiveAndDramDense)
{
    DianNao dn;
    auto l = sparseConvLayer();
    auto st = dn.runLayer(l);
    EXPECT_GT(st.totalEnergyPj(), 0.0);
    EXPECT_GT(st.cycles, 0);
    // Dense accelerator: DRAM weight traffic equals dense 8-bit size.
    EXPECT_DOUBLE_EQ(st.energy(Component::DramWeight),
                     (double)l.weightCount() * 100.0);
    EXPECT_DOUBLE_EQ(st.energy(Component::DramIndex), 0.0);
}

TEST(SmartExchange, CompressedWeightsCutDramTraffic)
{
    DianNao dn;
    SmartExchangeAccel se;
    auto l = sparseConvLayer();
    auto st_dn = dn.runLayer(l);
    auto st_se = se.runLayer(l);
    EXPECT_LT(st_se.energy(Component::DramWeight),
              st_dn.energy(Component::DramWeight));
    EXPECT_LT(st_se.dramAccessBytes(), st_dn.dramAccessBytes());
}

TEST(SmartExchange, WinsEnergyAndLatencyOnSparseConv)
{
    auto l = sparseConvLayer();
    SmartExchangeAccel se;
    DianNao dn;
    Scnn scnn;
    CambriconX cx;
    BitPragmatic bp;
    const auto e_se = se.runLayer(l).totalEnergyPj();
    EXPECT_LT(e_se, dn.runLayer(l).totalEnergyPj());
    EXPECT_LT(e_se, scnn.runLayer(l).totalEnergyPj());
    EXPECT_LT(e_se, cx.runLayer(l).totalEnergyPj());
    EXPECT_LT(e_se, bp.runLayer(l).totalEnergyPj());
    const auto c_se = se.runLayer(l).cycles;
    EXPECT_LT(c_se, dn.runLayer(l).cycles);
    EXPECT_LT(c_se, scnn.runLayer(l).cycles);
    EXPECT_LT(c_se, cx.runLayer(l).cycles);
    EXPECT_LT(c_se, bp.runLayer(l).cycles);
}

TEST(SmartExchange, ReAndSelectorOverheadIsNegligible)
{
    // Fig. 13: RE < 0.78% and index selector < 0.05% of total energy.
    SmartExchangeAccel se;
    auto w = accel::annotatedWorkload(ModelId::ResNet50);
    auto st = se.runNetwork(w, /*include_fc=*/false);
    const double total = st.totalEnergyPj();
    EXPECT_LT(st.energy(Component::Re) / total, 0.01);
    EXPECT_LT(st.energy(Component::IndexSelector) / total, 0.001);
}

TEST(SmartExchange, HigherSparsityReducesEnergyAndLatency)
{
    // Fig. 14 behaviour.
    SmartExchangeAccel se;
    auto l = sparseConvLayer();
    l.weightVectorSparsity = 0.45;
    auto lo = se.runLayer(l);
    l.weightVectorSparsity = 0.60;
    auto hi = se.runLayer(l);
    EXPECT_LT(hi.totalEnergyPj(), lo.totalEnergyPj());
    EXPECT_LE(hi.cycles, lo.cycles);
}

TEST(Ablation, IndexSelectorHelpsSparseLayers)
{
    SeAccelOptions with, without;
    without.useIndexSelector = false;
    SmartExchangeAccel a(with), b(without);
    auto l = sparseConvLayer();
    EXPECT_LT(a.runLayer(l).cycles, b.runLayer(l).cycles);
    EXPECT_LT(a.runLayer(l).totalEnergyPj(),
              b.runLayer(l).totalEnergyPj());
}

TEST(Ablation, CompressionCutsWeightTraffic)
{
    SeAccelOptions with, without;
    without.useCompression = false;
    SmartExchangeAccel a(with), b(without);
    auto l = sparseConvLayer();
    EXPECT_LT(a.runLayer(l).energy(Component::DramWeight),
              b.runLayer(l).energy(Component::DramWeight));
}

TEST(Ablation, BitSerialExploitsBoothSparsity)
{
    SeAccelOptions with, without;
    without.useBitSerial = false;
    SmartExchangeAccel a(with), b(without);
    auto l = sparseConvLayer();
    l.actAvgBoothDigits = 1.0;  // very sparse bits
    EXPECT_LT(a.runLayer(l).energy(Component::Pe),
              b.runLayer(l).energy(Component::Pe));
}

TEST(Ablation, RebuildAtGbCostsMoreWeightTraffic)
{
    SeAccelOptions in_pe, at_gb;
    at_gb.rebuildInPeLine = false;
    SmartExchangeAccel a(in_pe), b(at_gb);
    auto l = sparseConvLayer();
    EXPECT_LT(a.runLayer(l).energy(Component::WeightGbRead),
              b.runLayer(l).energy(Component::WeightGbRead));
}

TEST(Ablation, SingleReStallsIncreaseCycles)
{
    SeAccelOptions pp, single;
    single.pingPongRe = false;
    SmartExchangeAccel a(pp), b(single);
    // A small layer where basis loads are not hidden by DRAM time.
    LayerShape l = sparseConvLayer();
    l.c = 64;
    l.m = 512;
    l.h = l.w = 7;
    EXPECT_LE(a.runLayer(l).cycles, b.runLayer(l).cycles);
}

TEST(Ablation, DedicatedCompactDesignHelpsDepthwise)
{
    // Fig. 15 behaviour.
    SeAccelOptions with, without;
    without.dedicatedCompactSupport = false;
    SmartExchangeAccel a(with), b(without);
    LayerShape l;
    l.kind = LayerKind::DepthwiseConv;
    l.c = l.m = 192;
    l.h = l.w = 14;
    l.r = l.s = 3;
    l.pad = 1;
    l.actAvgBoothDigits = 1.4;
    auto st_a = a.runLayer(l);
    auto st_b = b.runLayer(l);
    EXPECT_LT(st_a.cycles, st_b.cycles);
    EXPECT_LE(st_a.totalEnergyPj(), st_b.totalEnergyPj());
}

TEST(Baselines, SparseAcceleratorsBeatDianNaoOnSparseLayers)
{
    auto l = sparseConvLayer();
    DianNao dn;
    CambriconX cx;
    Scnn scnn;
    const auto c_dn = dn.runLayer(l).cycles;
    EXPECT_LT(cx.runLayer(l).cycles, c_dn);
    EXPECT_LT(scnn.runLayer(l).cycles, c_dn);
}

TEST(Baselines, BitPragmaticSpeedTracksBoothDensity)
{
    BitPragmatic bp;
    auto l = sparseConvLayer();
    l.actAvgBoothDigits = 1.0;
    auto fast = bp.runLayer(l);
    l.actAvgBoothDigits = 3.5;
    auto slow = bp.runLayer(l);
    EXPECT_LT(fast.cycles, slow.cycles);
}

TEST(Baselines, ScnnCompressesActivations)
{
    Scnn scnn;
    DianNao dn;
    auto l = sparseConvLayer();
    EXPECT_LT(scnn.runLayer(l).energy(Component::DramWeight) +
                  scnn.runLayer(l).energy(Component::DramIndex),
              dn.runLayer(l).energy(Component::DramWeight) * 0.8);
}

TEST(Workloads, AnnotationSetsExpectedProfiles)
{
    auto w = accel::annotatedWorkload(ModelId::VGG19);
    bool any = false;
    for (const auto &l : w.layers)
        if (l.kind == LayerKind::Conv && l.weightVectorSparsity > 0.5)
            any = true;
    EXPECT_TRUE(any);
    // First layer must keep dense input.
    EXPECT_DOUBLE_EQ(w.layers.front().channelSparsity, 0.0);
}

TEST(Workloads, RunNetworkExcludesFcWhenAsked)
{
    SmartExchangeAccel se;
    auto w = accel::annotatedWorkload(ModelId::VGG11);
    auto with_fc = se.runNetwork(w, true);
    auto without_fc = se.runNetwork(w, false);
    EXPECT_LT(without_fc.dramAccessBytes(), with_fc.dramAccessBytes());
}

/** The headline claims: SE wins on every benchmark model. */
class ModelSweep : public ::testing::TestWithParam<ModelId>
{
};

TEST_P(ModelSweep, SmartExchangeBeatsDianNaoEverywhere)
{
    const auto id = GetParam();
    auto w = accel::annotatedWorkload(id);
    SmartExchangeAccel se;
    DianNao dn;
    auto st_se = se.runNetwork(w, false);
    auto st_dn = dn.runNetwork(w, false);
    const bool compact = id == ModelId::MobileNetV2 ||
                         id == ModelId::EfficientNetB0;
    // Fig. 10: energy-efficiency gain 2.0x-6.7x; compact models sit at
    // the low end (weight compression matters less when activations
    // dominate). We allow slack around the band for the analytical
    // substrate.
    const double gain =
        st_dn.totalEnergyPj() / st_se.totalEnergyPj();
    EXPECT_GT(gain, compact ? 1.2 : 1.5)
        << models::modelName(id);
    EXPECT_LT(gain, 15.0) << models::modelName(id);
    // Fig. 12: speedup 8.8x-19.2x band (again with slack; compact
    // models gain mostly through the dedicated dataflow).
    const double speedup = (double)st_dn.cycles / (double)st_se.cycles;
    EXPECT_GT(speedup, compact ? 2.0 : 4.0)
        << models::modelName(id);
    EXPECT_LT(speedup, 60.0) << models::modelName(id);
    // Fig. 11: baselines need >= 1.05x the DRAM accesses of SE.
    EXPECT_GT((double)st_dn.dramAccessBytes() /
                  (double)st_se.dramAccessBytes(),
              1.05)
        << models::modelName(id);
}

INSTANTIATE_TEST_SUITE_P(
    SevenModels, ModelSweep,
    ::testing::Values(ModelId::VGG11, ModelId::ResNet50,
                      ModelId::MobileNetV2, ModelId::EfficientNetB0,
                      ModelId::VGG19, ModelId::ResNet164,
                      ModelId::DeepLabV3Plus));

} // namespace
} // namespace se
