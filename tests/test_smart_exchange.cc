/**
 * @file
 * Tests of the SmartExchange decomposition (Algorithm 1): structural
 * invariants of the output (power-of-2 membership, vector sparsity),
 * reconstruction quality, the Fig. 9 evolution trace, and property
 * sweeps over matrix sizes and sparsity thresholds.
 */

#include <gtest/gtest.h>

#include <cmath>

#include "base/random.hh"
#include "core/smart_exchange.hh"
#include "linalg/linalg.hh"

namespace se {
namespace {

using core::decomposeMatrix;
using core::SeMatrix;
using core::SeOptions;
using core::SeTrace;

Tensor
randomWeight(int64_t m, int64_t n, uint64_t seed)
{
    Rng rng(seed);
    return randn({m, n}, rng, 0.0f, 0.1f);
}

TEST(SmartExchange, CeEntriesArePowersOfTwo)
{
    Tensor w = randomWeight(48, 3, 1);
    SeOptions opts;
    SeMatrix se = decomposeMatrix(w, opts);
    for (int64_t i = 0; i < se.ce.size(); ++i)
        EXPECT_TRUE(se.alphabet.contains(se.ce[i]))
            << "Ce entry " << se.ce[i] << " not in Omega_P";
}

TEST(SmartExchange, ReconstructionErrorIsModest)
{
    Tensor w = randomWeight(96, 3, 2);
    SeOptions opts;
    SeMatrix se = decomposeMatrix(w, opts);
    // Random matrices are the worst case; structured (trained) weights
    // do better. Even so the relative error stays bounded.
    EXPECT_LT(se.reconRelError, 0.6);
    EXPECT_GT(se.reconRelError, 0.0);
}

TEST(SmartExchange, ExactlyRepresentableMatrixHasTinyError)
{
    // W = Ce * B with power-of-2 Ce must reconstruct almost exactly.
    Rng rng(3);
    Tensor ce({30, 3});
    for (int64_t i = 0; i < ce.size(); ++i) {
        const int p = (int)rng.integer(-3, 0);
        const float sign = rng.chance(0.5) ? 1.0f : -1.0f;
        ce[i] = rng.chance(0.3) ? 0.0f
                                : sign * std::ldexp(1.0f, p);
    }
    Tensor b = randn({3, 3}, rng, 0.0f, 0.5f);
    for (int64_t i = 0; i < 3; ++i)
        b.at(i, i) += 1.0f;
    Tensor w = linalg::matmul(ce, b);
    SeOptions opts;
    opts.vectorThreshold = 0.0;  // don't prune anything
    SeMatrix se = decomposeMatrix(w, opts);
    // Column normalization perturbs the exact power-of-2 structure,
    // so the error is not exactly zero — but it must sit far below
    // the ~0.4-0.6 error of an unstructured random matrix.
    EXPECT_LT(se.reconRelError, 0.25);
}

TEST(SmartExchange, VectorSparsityRespondsToThreshold)
{
    Tensor w = randomWeight(128, 3, 4);
    SeOptions loose, tight;
    loose.vectorThreshold = 1e-4;
    tight.vectorThreshold = 0.08;
    SeMatrix se_loose = decomposeMatrix(w, loose);
    SeMatrix se_tight = decomposeMatrix(w, tight);
    EXPECT_GE(se_tight.vectorSparsity(), se_loose.vectorSparsity());
    EXPECT_GT(se_tight.vectorSparsity(), 0.0);
}

TEST(SmartExchange, MinVectorSparsityFloorIsHonoured)
{
    Tensor w = randomWeight(100, 3, 5);
    SeOptions opts;
    opts.vectorThreshold = 0.0;
    opts.minVectorSparsity = 0.4;
    SeMatrix se = decomposeMatrix(w, opts);
    EXPECT_GE(se.vectorSparsity(), 0.4 - 1e-9);
}

TEST(SmartExchange, ZeroRowsStayZeroInReconstruction)
{
    Tensor w = randomWeight(64, 3, 6);
    SeOptions opts;
    opts.minVectorSparsity = 0.3;
    SeMatrix se = decomposeMatrix(w, opts);
    Tensor rec = se.reconstruct();
    for (int64_t i = 0; i < se.ce.dim(0); ++i) {
        bool zero_row = true;
        for (int64_t j = 0; j < se.ce.dim(1); ++j)
            zero_row &= se.ce.at(i, j) == 0.0f;
        if (zero_row) {
            for (int64_t j = 0; j < rec.dim(1); ++j)
                EXPECT_FLOAT_EQ(rec.at(i, j), 0.0f);
        }
    }
}

TEST(SmartExchange, ElementSparsityAtLeastVectorSparsity)
{
    Tensor w = randomWeight(80, 3, 7);
    SeOptions opts;
    opts.minVectorSparsity = 0.25;
    SeMatrix se = decomposeMatrix(w, opts);
    EXPECT_GE(se.elementSparsity(), se.vectorSparsity() - 1e-9);
}

TEST(SmartExchange, StorageAccountingMatchesDefinition)
{
    Tensor w = randomWeight(50, 3, 8);
    SeOptions opts;
    opts.minVectorSparsity = 0.4;
    SeMatrix se = decomposeMatrix(w, opts);
    const int64_t m = 50, r = 3;
    const int64_t nz_rows =
        m - (int64_t)std::llround(se.vectorSparsity() * m);
    EXPECT_EQ(se.ceStorageBits(4), m + nz_rows * r * 4);
    EXPECT_EQ(se.basisStorageBits(8), r * 3 * 8);
}

TEST(SmartExchange, TraceTracksEvolution)
{
    // Reproduces the Fig. 9 shape: sparsity rises early (error bumps
    // up), then fitting remedies the error while keeping sparsity;
    // B drifts away from identity.
    Tensor w = randomWeight(192, 3, 9);
    SeOptions opts;
    opts.vectorThreshold = 0.02;
    opts.maxIterations = 20;
    SeTrace trace;
    decomposeMatrix(w, opts, &trace);
    ASSERT_GE(trace.reconError.size(), 3u);
    // B must end away from its identity initialization.
    EXPECT_GT(trace.basisDrift.back(), 0.01);
    // Sparsity is monotone non-decreasing (monotone pruning).
    for (size_t i = 1; i < trace.vectorSparsity.size(); ++i)
        EXPECT_GE(trace.vectorSparsity[i],
                  trace.vectorSparsity[i - 1] - 1e-9);
}

TEST(SmartExchange, ConvergesWithinIterationCap)
{
    Tensor w = randomWeight(64, 3, 10);
    SeOptions opts;
    opts.maxIterations = 30;
    SeMatrix se = decomposeMatrix(w, opts);
    EXPECT_LE(se.iterations, 30);
    EXPECT_GE(se.iterations, 1);
}

TEST(SmartExchange, RejectsWideMatrices)
{
    Tensor w({3, 10});
    EXPECT_DEATH(decomposeMatrix(w, SeOptions{}), "tall");
}

TEST(SmartExchange, CoefBitsControlAlphabetSize)
{
    Tensor w = randomWeight(60, 3, 11);
    SeOptions opts3, opts6;
    opts3.coefBits = 3;
    opts6.coefBits = 6;
    SeMatrix a = decomposeMatrix(w, opts3);
    SeMatrix b = decomposeMatrix(w, opts6);
    EXPECT_EQ(a.alphabet.numLevels, 3);
    EXPECT_EQ(b.alphabet.numLevels, 31);
    // More exponent levels => at most equal reconstruction error.
    EXPECT_LE(b.reconRelError, a.reconRelError + 0.05);
}

/** Property sweep across matrix geometries (kernel sizes 3/5/7). */
struct GeomParam
{
    int64_t m, n;
};

class GeometrySweep
    : public ::testing::TestWithParam<GeomParam>
{
};

TEST_P(GeometrySweep, InvariantsHoldForAllGeometries)
{
    const auto [m, n] = GetParam();
    Tensor w = randomWeight(m, n, (uint64_t)(m * 131 + n));
    SeOptions opts;
    opts.vectorThreshold = 0.01;
    SeMatrix se = decomposeMatrix(w, opts);
    EXPECT_EQ(se.ce.dim(0), m);
    EXPECT_EQ(se.ce.dim(1), n);
    EXPECT_EQ(se.basis.dim(0), n);
    EXPECT_EQ(se.basis.dim(1), n);
    for (int64_t i = 0; i < se.ce.size(); ++i)
        EXPECT_TRUE(se.alphabet.contains(se.ce[i]));
    EXPECT_LT(se.reconRelError, 0.8);
}

INSTANTIATE_TEST_SUITE_P(
    Geometries, GeometrySweep,
    ::testing::Values(GeomParam{9, 3}, GeomParam{48, 3},
                      GeomParam{192, 3}, GeomParam{25, 5},
                      GeomParam{175, 5}, GeomParam{49, 7},
                      GeomParam{196, 4}, GeomParam{512, 3}));

} // namespace
} // namespace se
