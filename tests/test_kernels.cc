/**
 * @file
 * Differential tests of the se::kernels layer against the legacy
 * loops.
 *
 * The load-bearing invariant is bit-exactness of the default-on fast
 * paths (conv/linear forward, linear backward, matmul): the golden
 * benches run with these lowerings enabled, so "agrees with naive to
 * the last bit" is exactly "goldens cannot move". The conv backward
 * GEMM path re-associates only the gx scatter-add, so the sweep holds
 * it to 1e-4 relative while gradW/gradB stay exact.
 */

#include <gtest/gtest.h>

#include <cmath>
#include <cstring>
#include <tuple>
#include <vector>

#include "base/random.hh"
#include "core/model_file.hh"
#include "kernels/ce_gemm.hh"
#include "kernels/dispatch.hh"
#include "kernels/gemm.hh"
#include "kernels/kernels.hh"
#include "kernels/scratch.hh"
#include "linalg/linalg.hh"
#include "models/zoo.hh"
#include "nn/layers.hh"

namespace {

using namespace se;

/** Flip the process default for one scope. */
class ScopedImpl
{
  public:
    explicit ScopedImpl(kernels::ConvImpl impl)
        : prev_(kernels::defaultConvImpl())
    {
        kernels::setDefaultConvImpl(impl);
    }
    ~ScopedImpl() { kernels::setDefaultConvImpl(prev_); }

  private:
    kernels::ConvImpl prev_;
};

bool
bitEqual(const Tensor &a, const Tensor &b)
{
    return a.shape() == b.shape() &&
           std::memcmp(a.data(), b.data(),
                       (size_t)a.size() * sizeof(float)) == 0;
}

/**
 * Largest absolute divergence relative to the reference tensor's
 * magnitude (norm-relative: per-element relative error is meaningless
 * where float cancellation leaves near-zero entries).
 */
double
maxRelDiff(const Tensor &a, const Tensor &b)
{
    EXPECT_EQ(a.shape(), b.shape());
    double worst = 0.0, scale = 0.0;
    for (int64_t i = 0; i < a.size(); ++i) {
        worst = std::max(worst, std::fabs((double)a[i] - b[i]));
        scale = std::max(scale, std::fabs((double)a[i]));
    }
    return worst / std::max(scale, 1e-30);
}

/** The legacy matmul loop, kept verbatim as the reference. */
Tensor
referenceMatmul(const Tensor &a, const Tensor &b)
{
    const int64_t m = a.dim(0), k = a.dim(1), n = b.dim(1);
    Tensor c({m, n});
    for (int64_t i = 0; i < m; ++i)
        for (int64_t p = 0; p < k; ++p) {
            const float av = a.at(i, p);
            if (av == 0.0f)
                continue;
            for (int64_t j = 0; j < n; ++j)
                c.at(i, j) += av * b.at(p, j);
        }
    return c;
}

// ------------------------------------------------------------- GEMM

TEST(Kernels, GemmMatchesReferenceBitExact)
{
    Rng rng(101);
    // Shapes straddle the register tile (8), the remainder paths and
    // the parallel-dispatch threshold.
    const std::vector<std::vector<int64_t>> shapes{
        {1, 1, 1},  {1, 7, 1},   {5, 1, 9},   {17, 23, 9},
        {8, 8, 8},  {33, 15, 1}, {64, 64, 64}, {96, 96, 96},
    };
    for (const auto &s : shapes) {
        Tensor a = randn({s[0], s[1]}, rng);
        Tensor b = randn({s[1], s[2]}, rng);
        EXPECT_TRUE(bitEqual(referenceMatmul(a, b),
                             kernels::gemm(a, b)))
            << s[0] << "x" << s[1] << "x" << s[2];
    }
}

TEST(Kernels, GemmAdversarialShapes)
{
    Rng rng(102);
    // k = 0: no accumulation at all, output must be exactly zero.
    Tensor a0({3, 0});
    Tensor b0({0, 4});
    Tensor c0 = kernels::gemm(a0, b0);
    ASSERT_EQ(c0.dim(0), 3);
    ASSERT_EQ(c0.dim(1), 4);
    for (int64_t i = 0; i < c0.size(); ++i)
        EXPECT_EQ(c0[i], 0.0f);

    // 1xN and Nx1 degenerate panels.
    Tensor row = randn({1, 129}, rng);
    Tensor colv = randn({129, 1}, rng);
    EXPECT_TRUE(bitEqual(referenceMatmul(row, colv),
                         kernels::gemm(row, colv)));
    EXPECT_TRUE(bitEqual(referenceMatmul(colv, row),
                         kernels::gemm(colv, row)));
}

TEST(Kernels, GemmSparseInputsKeepZeroSkipSemantics)
{
    Rng rng(103);
    Tensor a = randn({31, 45}, rng);
    Tensor b = randn({45, 27}, rng);
    // SmartExchange Ce matrices are row-sparse; the blocked kernel
    // must keep the legacy zero-skip byte-compatible.
    for (int64_t i = 0; i < a.size(); i += 3)
        a[i] = 0.0f;
    EXPECT_TRUE(bitEqual(referenceMatmul(a, b), kernels::gemm(a, b)));
}

TEST(Kernels, MatmulRoutesThroughBlockedKernel)
{
    Rng rng(104);
    Tensor a = randn({19, 33}, rng);
    Tensor b = randn({33, 21}, rng);
    Tensor fast = linalg::matmul(a, b);
    ScopedImpl naive(kernels::ConvImpl::Naive);
    EXPECT_TRUE(bitEqual(linalg::matmul(a, b), fast));
}

TEST(Kernels, GemmThreadCountInvariant)
{
    Rng rng(105);
    // Big enough to clear the parallel threshold.
    Tensor a = randn({96, 96}, rng);
    Tensor b = randn({96, 96}, rng);
    kernels::configureThreads(1);
    Tensor serial = kernels::gemm(a, b);
    kernels::configureThreads(4);
    Tensor threaded = kernels::gemm(a, b);
    kernels::configureThreads(1);
    EXPECT_TRUE(bitEqual(serial, threaded));
}

// ------------------------------------------------------------- Conv2d

struct ConvCfg
{
    int64_t c, m, k, stride, pad, dil, groups, h, w;
};

std::vector<ConvCfg>
convSweep()
{
    // stride x pad x dil x groups x kernel over non-square inputs,
    // skipping geometrically invalid combinations.
    std::vector<ConvCfg> out;
    const int64_t c = 6, m = 12;
    for (int64_t k : {1, 3, 7})
        for (int64_t stride : {1, 2})
            for (int64_t pad : {0, 1, 3})
                for (int64_t dil : {1, 2})
                    for (int64_t groups : {(int64_t)1, c}) {
                        const int64_t h = 11, w = 9;
                        const int64_t kext = dil * (k - 1) + 1;
                        if (h + 2 * pad < kext || w + 2 * pad < kext)
                            continue;
                        out.push_back(
                            {c, m, k, stride, pad, dil, groups, h, w});
                    }
    return out;
}

TEST(Kernels, ConvForwardSweepFastVsNaive)
{
    int checked = 0;
    for (const ConvCfg &cfg : convSweep()) {
        Rng rng(200 + checked);
        nn::Conv2d conv(cfg.c, cfg.m, cfg.k, cfg.stride, cfg.pad,
                        cfg.groups, rng, /*bias=*/true, cfg.dil);
        Tensor x = randn({2, cfg.c, cfg.h, cfg.w}, rng);

        Tensor y_naive, y_fast;
        {
            ScopedImpl impl(kernels::ConvImpl::Naive);
            y_naive = conv.forward(x, false);
        }
        {
            ScopedImpl impl(kernels::ConvImpl::Im2colGemm);
            y_fast = conv.forward(x, false);
        }
        // The issue's acceptance bound is 1e-4 relative; the lowering
        // actually achieves exactness, which is what keeps the golden
        // benches byte-stable, so assert the stronger property.
        EXPECT_LE(maxRelDiff(y_naive, y_fast), 1e-4);
        EXPECT_TRUE(bitEqual(y_naive, y_fast))
            << "k=" << cfg.k << " stride=" << cfg.stride
            << " pad=" << cfg.pad << " dil=" << cfg.dil
            << " groups=" << cfg.groups;
        ++checked;
    }
    EXPECT_GT(checked, 30);  // the sweep really swept
}

TEST(Kernels, ConvBackwardSweepFastVsNaive)
{
    int checked = 0;
    for (const ConvCfg &cfg : convSweep()) {
        Rng rng_a(300 + checked), rng_b(300 + checked), rng_x(900);
        nn::Conv2d naive(cfg.c, cfg.m, cfg.k, cfg.stride, cfg.pad,
                         cfg.groups, rng_a, true, cfg.dil);
        nn::Conv2d fast(cfg.c, cfg.m, cfg.k, cfg.stride, cfg.pad,
                        cfg.groups, rng_b, true, cfg.dil);
        Tensor x = randn({2, cfg.c, cfg.h, cfg.w}, rng_x);

        Tensor gx_naive, gx_fast, gy;
        {
            ScopedImpl impl(kernels::ConvImpl::Naive);
            Tensor y = naive.forward(x, true);
            gy = randn(y.shape(), rng_x);
            gx_naive = naive.backward(gy);
        }
        {
            ScopedImpl impl(kernels::ConvImpl::Im2colGemm);
            fast.forward(x, true);
            gx_fast = fast.backward(gy);
        }

        // gx goes through the re-associating col2im fold: 1e-4.
        EXPECT_LE(maxRelDiff(gx_naive, gx_fast), 1e-4)
            << "k=" << cfg.k << " stride=" << cfg.stride
            << " pad=" << cfg.pad << " dil=" << cfg.dil
            << " groups=" << cfg.groups;
        // gradW / gradB keep the exact legacy chains.
        auto pn = naive.params();
        auto pf = fast.params();
        ASSERT_EQ(pn.size(), pf.size());
        for (size_t i = 0; i < pn.size(); ++i)
            EXPECT_TRUE(bitEqual(*pn[i].grad, *pf[i].grad))
                << pn[i].name << " k=" << cfg.k
                << " stride=" << cfg.stride << " pad=" << cfg.pad
                << " dil=" << cfg.dil << " groups=" << cfg.groups;
        ++checked;
    }
}

TEST(Kernels, ConvForwardThreadCountInvariant)
{
    Rng rng(42);
    nn::Conv2d conv(16, 32, 3, 1, 1, 1, rng);
    Tensor x = randn({2, 16, 24, 24}, rng);
    ScopedImpl impl(kernels::ConvImpl::Im2colGemm);
    kernels::configureThreads(1);
    Tensor serial = conv.forward(x, false);
    kernels::configureThreads(4);
    Tensor threaded = conv.forward(x, false);
    kernels::configureThreads(1);
    EXPECT_TRUE(bitEqual(serial, threaded));
}

TEST(Kernels, ScratchArenaGrowOnlyAndRelease)
{
    kernels::ScratchArena arena;
    EXPECT_EQ(arena.floatsReserved(), 0u);
    float *p = arena.colBuffer(100);
    ASSERT_NE(p, nullptr);
    EXPECT_GE(arena.floatsReserved(), 100u);
    // Smaller requests reuse the existing block.
    EXPECT_EQ(arena.colBuffer(10), p);
    const size_t high_water = arena.floatsReserved();
    arena.transposeBuffer(50);
    arena.gradBuffer(25);
    EXPECT_GE(arena.floatsReserved(), high_water + 75);
    arena.release();
    EXPECT_EQ(arena.floatsReserved(), 0u);
}

TEST(Kernels, ConvScratchArenaReuseIsStateless)
{
    // Repeated calls reuse the arena; a smaller input after a larger
    // one must not read stale bytes beyond its extent.
    Rng rng(43);
    nn::Conv2d conv(4, 8, 3, 1, 1, 1, rng);
    Tensor big = randn({1, 4, 20, 20}, rng);
    Tensor small = randn({1, 4, 7, 5}, rng);

    ScopedImpl impl(kernels::ConvImpl::Im2colGemm);
    Tensor first_small = conv.forward(small, false);
    conv.forward(big, false);
    Tensor again_small = conv.forward(small, false);
    EXPECT_TRUE(bitEqual(first_small, again_small));
}

// ------------------------------------------------------------- Linear

TEST(Kernels, LinearForwardBackwardBitExact)
{
    // Batch sizes on both sides of the transpose heuristic.
    for (int64_t batch : {(int64_t)1, (int64_t)2, (int64_t)16}) {
        Rng rng_a(500 + (int)batch), rng_b(500 + (int)batch),
            rng_x(77);
        nn::Linear naive(37, 19, rng_a);
        nn::Linear fast(37, 19, rng_b);
        Tensor x = randn({batch, 37}, rng_x);

        Tensor y_naive, gx_naive, y_fast, gx_fast, gy;
        {
            ScopedImpl impl(kernels::ConvImpl::Naive);
            y_naive = naive.forward(x, true);
            gy = randn(y_naive.shape(), rng_x);
            gx_naive = naive.backward(gy);
        }
        {
            ScopedImpl impl(kernels::ConvImpl::Im2colGemm);
            y_fast = fast.forward(x, true);
            gx_fast = fast.backward(gy);
        }
        EXPECT_TRUE(bitEqual(y_naive, y_fast)) << "batch " << batch;
        EXPECT_TRUE(bitEqual(gx_naive, gx_fast)) << "batch " << batch;
        auto pn = naive.params();
        auto pf = fast.params();
        for (size_t i = 0; i < pn.size(); ++i)
            EXPECT_TRUE(bitEqual(*pn[i].grad, *pf[i].grad))
                << pn[i].name << " batch " << batch;
    }
}

// ------------------------------------------- whole-model congruence

TEST(Kernels, SimModelForwardIdenticalAcrossImpls)
{
    // End-to-end canary: a full reduced-scale CNN (conv + bn + pool +
    // fc) must produce byte-identical logits under every lowering.
    models::SimConfig cfg;
    cfg.baseWidth = 8;
    cfg.inHeight = cfg.inWidth = 10;
    cfg.seed = 5;

    Rng rng(55);
    Tensor x =
        randn({2, cfg.inChannels, cfg.inHeight, cfg.inWidth}, rng);

    Tensor ref;
    {
        ScopedImpl impl(kernels::ConvImpl::Naive);
        auto net = models::buildSim(models::ModelId::VGG19, cfg);
        ref = net->forward(x, false);
    }
    for (auto impl_kind :
         {kernels::ConvImpl::Auto, kernels::ConvImpl::Im2colGemm}) {
        ScopedImpl impl(impl_kind);
        auto net = models::buildSim(models::ModelId::VGG19, cfg);
        EXPECT_TRUE(bitEqual(ref, net->forward(x, false)));
    }
}

// ------------------------------------------------------ Ce-code GEMM

/** Random Ce in Omega_P (zero rows included) plus its packed form. */
Tensor
randomCe(Rng &rng, int64_t rows, int64_t cols,
         const quant::Pow2Alphabet &a)
{
    Tensor ce({rows, cols});
    for (int64_t i = 0; i < rows; ++i) {
        if (rng.chance(0.3))
            continue;  // vector-sparse row
        for (int64_t j = 0; j < cols; ++j) {
            if (rng.chance(0.2))
                continue;
            const int exp = (int)rng.integer(a.expMin(), a.expMax);
            const float mag = std::ldexp(1.0f, exp);
            ce.at(i, j) = rng.chance(0.5) ? mag : -mag;
        }
    }
    return ce;
}

TEST(CeGemm, BitIdenticalToDenseGemmOnDecodedCodes)
{
    // gemmCeB must reproduce sgemm(decode(Ce), B) — and hence the
    // dense rebuild path — to the last bit, across panel boundaries
    // (rows > the internal panel size), odd code counts and zero
    // rows.
    Rng rng(31);
    for (const auto &[rows, cols, n] :
         std::vector<std::tuple<int64_t, int64_t, int64_t>>{
             {1, 1, 1}, {3, 3, 4}, {48, 3, 3}, {130, 5, 7},
             {300, 9, 9}, {257, 4, 6}}) {
        quant::Pow2Alphabet a;
        a.expMax = (int)rng.integer(-4, 4);
        a.numLevels = (int)rng.integer(1, 7);
        Tensor ce = randomCe(rng, rows, cols, a);
        Tensor basis = randn({cols, n}, rng);
        const auto packed = core::packCe(ce, a);

        Tensor want({rows, n});
        kernels::sgemm(ce.data(), basis.data(), want.data(), rows,
                       cols, n, false);
        Tensor got({rows, n});
        kernels::ScratchArena arena;
        kernels::gemmCeB(packed.rowMask.data(),
                         packed.nibbles.data(), rows, cols,
                         basis.data(), n, a, got.data(), arena);
        EXPECT_EQ(std::memcmp(want.data(), got.data(),
                              (size_t)want.size() * sizeof(float)),
                  0)
            << rows << "x" << cols << "x" << n;

        // The Tensor-level dense path (reconstruct ==
        // linalg::matmul) agrees too, under both lowerings.
        core::SeMatrix m;
        m.ce = ce;
        m.basis = basis;
        m.alphabet = a;
        for (auto impl_kind :
             {kernels::ConvImpl::Auto, kernels::ConvImpl::Naive}) {
            ScopedImpl impl(impl_kind);
            Tensor recon = m.reconstruct();
            EXPECT_EQ(
                std::memcmp(recon.data(), got.data(),
                            (size_t)recon.size() * sizeof(float)),
                0)
                << "impl " << (int)impl_kind;
        }
    }
}

TEST(CeGemm, FullySparseAndFullyDenseEdges)
{
    Rng rng(32);
    quant::Pow2Alphabet a;
    a.expMax = 2;  // covers the 0.5 / -2.0 codes below
    a.numLevels = 7;
    Tensor basis = randn({3, 5}, rng);
    kernels::ScratchArena arena;

    Tensor zero({10, 3});  // all rows zero: empty nibble stream
    auto pz = core::packCe(zero, a);
    EXPECT_EQ(pz.nonZeroRows, 0);
    Tensor out({10, 5}, 1.0f);
    kernels::gemmCeB(pz.rowMask.data(), pz.nibbles.data(), 10, 3,
                     basis.data(), 5, a, out.data(), arena);
    for (int64_t i = 0; i < out.size(); ++i)
        EXPECT_EQ(out[i], 0.0f);

    Tensor dense({10, 3});  // no zero anywhere
    for (int64_t i = 0; i < dense.size(); ++i)
        dense[i] = (i % 2) ? 0.5f : -2.0f;
    auto pd = core::packCe(dense, a);
    EXPECT_EQ(pd.nonZeroRows, 10);
    Tensor want({10, 5});
    kernels::sgemm(dense.data(), basis.data(), want.data(), 10, 3, 5,
                   false);
    Tensor got({10, 5});
    kernels::gemmCeB(pd.rowMask.data(), pd.nibbles.data(), 10, 3,
                     basis.data(), 5, a, got.data(), arena);
    EXPECT_EQ(std::memcmp(want.data(), got.data(),
                          (size_t)want.size() * sizeof(float)),
              0);
}

// ------------------------------------------------------ ISA dispatch

/** Force one micro-kernel ISA for a scope, restoring the previous. */
class ScopedIsa
{
  public:
    explicit ScopedIsa(kernels::KernelIsa isa)
        : prev_(kernels::activeIsa())
    {
        kernels::setActiveIsa(isa);
    }
    ~ScopedIsa() { kernels::setActiveIsa(prev_); }

  private:
    kernels::KernelIsa prev_;
};

TEST(Dispatch, SupportedIsasStartWithScalarAndMatchActive)
{
    const auto isas = kernels::supportedIsas();
    ASSERT_FALSE(isas.empty());
    EXPECT_EQ(isas.front(), kernels::KernelIsa::Scalar);
    EXPECT_TRUE(kernels::isaSupported(kernels::activeIsa()));
    EXPECT_TRUE(kernels::isaSupported(kernels::detectBestIsa()));
}

TEST(Dispatch, ParseKernelIsaStrict)
{
    EXPECT_EQ(kernels::parseKernelIsa("auto"),
              kernels::detectBestIsa());
    EXPECT_EQ(kernels::parseKernelIsa(""), kernels::detectBestIsa());
    EXPECT_EQ(kernels::parseKernelIsa("scalar"),
              kernels::KernelIsa::Scalar);
    EXPECT_THROW(kernels::parseKernelIsa("avx512"),
                 std::invalid_argument);
    EXPECT_THROW(kernels::parseKernelIsa("fast"),
                 std::invalid_argument);
    EXPECT_THROW(kernels::parseKernelIsa("AVX2"),
                 std::invalid_argument);
}

TEST(Dispatch, ForcedSelectionSticks)
{
    for (kernels::KernelIsa isa : kernels::supportedIsas()) {
        ScopedIsa forced(isa);
        EXPECT_EQ(kernels::activeIsa(), isa);
    }
}

/**
 * Random matrix with ~25% exact zeros, a few negative zeros and — when
 * asked — a NaN planted in a row the other operand zeros out, so the
 * sweep exercises the zero-skip semantics (signed-zero preservation,
 * no 0*NaN) every variant must share with the scalar kernel.
 */
Tensor
sparseRandn(Rng &rng, int64_t rows, int64_t cols)
{
    Tensor t = randn({rows, cols}, rng);
    for (int64_t i = 0; i < t.size(); ++i) {
        if (rng.chance(0.2))
            t[i] = 0.0f;
        else if (rng.chance(0.05))
            t[i] = -0.0f;
    }
    return t;
}

TEST(Dispatch, SgemmEveryIsaBitIdenticalToScalar)
{
    Rng rng(201);
    // m x k x n sweep: unit dims, empty inner dim, tile-aligned,
    // remainder tails for the 8- and 16-wide SIMD stages.
    const std::vector<std::vector<int64_t>> shapes{
        {1, 1, 1},  {1, 17, 1},  {9, 1, 13},   {5, 0, 7},
        {17, 23, 9}, {32, 16, 24}, {33, 15, 17}, {96, 31, 40},
    };
    for (const auto &s : shapes) {
        const int64_t m = s[0], k = s[1], n = s[2];
        Tensor a = sparseRandn(rng, m, k);
        Tensor b = sparseRandn(rng, k, n);
        for (bool accumulate : {false, true}) {
            Tensor seed = randn({m, n}, rng);
            Tensor want = seed;
            {
                ScopedIsa isa(kernels::KernelIsa::Scalar);
                kernels::sgemm(a.data(), b.data(), want.data(), m, k,
                               n, accumulate);
            }
            for (kernels::KernelIsa isa : kernels::supportedIsas()) {
                Tensor got = seed;
                ScopedIsa forced(isa);
                kernels::sgemm(a.data(), b.data(), got.data(), m, k,
                               n, accumulate);
                EXPECT_TRUE(bitEqual(want, got))
                    << kernels::isaName(isa) << " " << m << "x" << k
                    << "x" << n << " acc=" << accumulate;
            }
        }
    }
}

TEST(Dispatch, SgemmABtEveryIsaBitIdenticalToScalar)
{
    Rng rng(202);
    const std::vector<std::vector<int64_t>> shapes{
        {1, 1, 1},  {1, 17, 1},  {9, 1, 13},   {5, 0, 7},
        {17, 23, 9}, {32, 16, 24}, {33, 15, 17}, {96, 31, 40},
    };
    for (const auto &s : shapes) {
        const int64_t m = s[0], l = s[1], n = s[2];
        Tensor a = sparseRandn(rng, m, l);
        Tensor b = sparseRandn(rng, n, l);  // B is n x l, used as B^T
        for (bool accumulate : {false, true}) {
            Tensor seed = randn({m, n}, rng);
            Tensor want = seed;
            {
                ScopedIsa isa(kernels::KernelIsa::Scalar);
                kernels::sgemmABt(a.data(), b.data(), want.data(), m,
                                  l, n, accumulate);
            }
            for (kernels::KernelIsa isa : kernels::supportedIsas()) {
                Tensor got = seed;
                ScopedIsa forced(isa);
                kernels::sgemmABt(a.data(), b.data(), got.data(), m,
                                  l, n, accumulate);
                EXPECT_TRUE(bitEqual(want, got))
                    << kernels::isaName(isa) << " " << m << "x" << l
                    << "x" << n << " acc=" << accumulate;
            }
        }
    }
}

TEST(Dispatch, SgemmSkipsZeroTimesNaN)
{
    // A zero entry of A must SKIP the multiply, not fold 0 * NaN into
    // the chain — the scalar contract every variant inherits.
    Tensor a({2, 2});
    a.at(0, 0) = 1.0f;  // row 0 uses only B row 0
    a.at(1, 1) = 2.0f;  // row 1 uses only B row 1
    Tensor b({2, 3});
    b.at(0, 0) = 3.0f;
    b.at(1, 1) = std::nanf("");
    for (kernels::KernelIsa isa : kernels::supportedIsas()) {
        ScopedIsa forced(isa);
        Tensor c({2, 3});
        kernels::sgemm(a.data(), b.data(), c.data(), 2, 2, 3, false);
        EXPECT_EQ(c.at(0, 0), 3.0f) << kernels::isaName(isa);
        EXPECT_FALSE(std::isnan(c.at(0, 1))) << kernels::isaName(isa);
        EXPECT_TRUE(std::isnan(c.at(1, 1))) << kernels::isaName(isa);
    }
}

TEST(Dispatch, GemmCeBEveryIsaBitIdenticalToScalarAndPanelDecode)
{
    Rng rng(203);
    for (const auto &[rows, cols, n] :
         std::vector<std::tuple<int64_t, int64_t, int64_t>>{
             {1, 1, 1}, {3, 3, 4}, {48, 3, 3}, {130, 5, 7},
             {300, 9, 9}, {257, 4, 6}}) {
        quant::Pow2Alphabet a;
        a.expMax = (int)rng.integer(-4, 4);
        a.numLevels = (int)rng.integer(1, 7);
        Tensor ce = randomCe(rng, rows, cols, a);
        Tensor basis = randn({cols, n}, rng);
        const auto packed = core::packCe(ce, a);
        kernels::ScratchArena arena;

        Tensor want({rows, n});
        {
            ScopedIsa isa(kernels::KernelIsa::Scalar);
            kernels::gemmCeB(packed.rowMask.data(),
                             packed.nibbles.data(), rows, cols,
                             basis.data(), n, a, want.data(), arena);
        }
        // The staged decode-then-sgemm baseline agrees with the fused
        // kernel...
        Tensor staged({rows, n});
        kernels::gemmCeBPanelDecode(packed.rowMask.data(),
                                    packed.nibbles.data(), rows, cols,
                                    basis.data(), n, a, staged.data(),
                                    arena);
        EXPECT_TRUE(bitEqual(want, staged))
            << rows << "x" << cols << "x" << n;
        // ...and so does every SIMD variant of the fused kernel.
        for (kernels::KernelIsa isa : kernels::supportedIsas()) {
            Tensor got({rows, n});
            ScopedIsa forced(isa);
            kernels::gemmCeB(packed.rowMask.data(),
                             packed.nibbles.data(), rows, cols,
                             basis.data(), n, a, got.data(), arena);
            EXPECT_TRUE(bitEqual(want, got))
                << kernels::isaName(isa) << " " << rows << "x" << cols
                << "x" << n;
        }
    }
}

TEST(Dispatch, SerialScopeKeepsFusedGemmOffThePool)
{
    // A fused Ce GEMM big enough to clear the parallel threshold
    // (m * r * n >= 2^19 multiplies) must stay inline when the caller
    // holds a SerialScope — the ServeEngine batch path runs exactly
    // this way from pool workers, where re-entering the pool would
    // deadlock it.
    Rng rng(204);
    quant::Pow2Alphabet a;
    a.expMax = 0;
    a.numLevels = 7;
    const int64_t m = 320, r = 8, n = 256;
    Tensor ce = randomCe(rng, m, r, a);
    Tensor basis = randn({r, n}, rng);
    const auto packed = core::packCe(ce, a);
    kernels::ScratchArena arena;

    Tensor want({m, n});
    kernels::gemmCeB(packed.rowMask.data(), packed.nibbles.data(), m,
                     r, basis.data(), n, a, want.data(), arena);

    const uint64_t before = kernels::pool().tasksExecuted();
    Tensor got({m, n});
    {
        kernels::SerialScope serial;
        kernels::gemmCeB(packed.rowMask.data(), packed.nibbles.data(),
                         m, r, basis.data(), n, a, got.data(), arena);
    }
    EXPECT_EQ(kernels::pool().tasksExecuted(), before);
    EXPECT_TRUE(bitEqual(want, got));
}

TEST(Dispatch, NestedFusedGemmFromPoolWorkerStaysInline)
{
    // The same fused GEMM issued FROM a pool worker (no SerialScope)
    // must run inline via the worker-thread guard: only the one
    // submitted task may hit the pool, never nested panel tasks.
    Rng rng(205);
    quant::Pow2Alphabet a;
    a.expMax = 0;
    a.numLevels = 7;
    const int64_t m = 320, r = 8, n = 256;
    Tensor ce = randomCe(rng, m, r, a);
    Tensor basis = randn({r, n}, rng);
    const auto packed = core::packCe(ce, a);

    Tensor want({m, n});
    {
        kernels::ScratchArena arena;
        kernels::gemmCeB(packed.rowMask.data(), packed.nibbles.data(),
                         m, r, basis.data(), n, a, want.data(), arena);
    }

    const uint64_t before = kernels::pool().tasksExecuted();
    Tensor got({m, n});
    kernels::pool()
        .submit([&] {
            kernels::ScratchArena arena;
            kernels::gemmCeB(packed.rowMask.data(),
                             packed.nibbles.data(), m, r,
                             basis.data(), n, a, got.data(), arena);
        })
        .get();
    EXPECT_EQ(kernels::pool().tasksExecuted(), before + 1);
    EXPECT_TRUE(bitEqual(want, got));
}

} // namespace
