/**
 * @file
 * Tests for the synthetic dataset generators.
 */

#include <gtest/gtest.h>

#include <set>

#include "data/synthetic.hh"

namespace se {
namespace {

TEST(Classification, ShapesAndLabels)
{
    data::ClassSetConfig cfg;
    cfg.numClasses = 5;
    cfg.trainBatches = 3;
    cfg.testBatches = 2;
    auto task = data::makeClassification(cfg);
    EXPECT_EQ(task.train.batches.size(), 3u);
    EXPECT_EQ(task.test.batches.size(), 2u);
    EXPECT_EQ(task.train.numClasses, 5);
    for (size_t b = 0; b < task.train.batches.size(); ++b) {
        const Tensor &t = task.train.batches[b];
        EXPECT_EQ(t.dim(0), cfg.batchSize);
        EXPECT_EQ(t.dim(1), cfg.channels);
        EXPECT_EQ(t.dim(2), cfg.height);
        for (int lbl : task.train.labels[b]) {
            EXPECT_GE(lbl, 0);
            EXPECT_LT(lbl, 5);
        }
    }
}

TEST(Classification, DeterministicUnderSeed)
{
    data::ClassSetConfig cfg;
    cfg.seed = 99;
    auto a = data::makeClassification(cfg);
    auto b = data::makeClassification(cfg);
    EXPECT_EQ(a.train.labels[0], b.train.labels[0]);
    for (int64_t i = 0; i < a.train.batches[0].size(); ++i)
        EXPECT_FLOAT_EQ(a.train.batches[0][i], b.train.batches[0][i]);
}

TEST(Classification, DifferentSeedsDiffer)
{
    data::ClassSetConfig cfg;
    cfg.seed = 1;
    auto a = data::makeClassification(cfg);
    cfg.seed = 2;
    auto b = data::makeClassification(cfg);
    double diff = 0.0;
    for (int64_t i = 0; i < a.train.batches[0].size(); ++i)
        diff += std::abs(a.train.batches[0][i] - b.train.batches[0][i]);
    EXPECT_GT(diff, 1.0);
}

TEST(Classification, CoversAllClasses)
{
    data::ClassSetConfig cfg;
    cfg.numClasses = 4;
    cfg.trainBatches = 8;
    auto task = data::makeClassification(cfg);
    std::set<int> seen;
    for (const auto &labels : task.train.labels)
        for (int l : labels)
            seen.insert(l);
    EXPECT_EQ(seen.size(), 4u);
}

TEST(Classification, PrototypesAreLearnableSignal)
{
    // Same-class samples must be closer together (on average) than
    // cross-class samples; otherwise no model could learn the task.
    data::ClassSetConfig cfg;
    cfg.noise = 0.3f;
    cfg.trainBatches = 6;
    auto task = data::makeClassification(cfg);

    // Collect one mean image per class.
    std::vector<Tensor> sums(
        (size_t)cfg.numClasses,
        Tensor({cfg.channels, cfg.height, cfg.width}));
    std::vector<int> counts((size_t)cfg.numClasses, 0);
    for (size_t b = 0; b < task.train.batches.size(); ++b)
        for (int i = 0; i < cfg.batchSize; ++i) {
            const int cls = task.train.labels[b][(size_t)i];
            for (int64_t k = 0; k < sums[(size_t)cls].size(); ++k)
                sums[(size_t)cls][k] +=
                    task.train.batches[b]
                        [i * sums[(size_t)cls].size() + k];
            ++counts[(size_t)cls];
        }
    // Mean intra-class distance to own centroid vs to other centroids.
    double self_dist = 0.0, cross_dist = 0.0;
    int cross_n = 0;
    for (int a = 0; a < cfg.numClasses; ++a) {
        for (int64_t k = 0; k < sums[(size_t)a].size(); ++k)
            sums[(size_t)a][k] /= (float)std::max(1, counts[(size_t)a]);
        for (int b = 0; b < cfg.numClasses; ++b) {
            double d = 0.0;
            for (int64_t k = 0; k < sums[(size_t)a].size(); ++k) {
                const double diff =
                    sums[(size_t)a][k] - sums[(size_t)b][k];
                d += diff * diff;
            }
            if (a == b)
                self_dist += d;
            else {
                cross_dist += d;
                ++cross_n;
            }
        }
    }
    EXPECT_GT(cross_dist / cross_n, self_dist / cfg.numClasses);
}

TEST(Segmentation, ShapesAndLabelRange)
{
    data::SegSetConfig cfg;
    cfg.numClasses = 4;
    auto task = data::makeSegmentation(cfg);
    EXPECT_EQ((int)task.train.images.size(), cfg.trainBatches);
    const Tensor &img = task.train.images[0];
    const Tensor &lbl = task.train.labels[0];
    EXPECT_EQ(img.dim(0), cfg.batchSize);
    EXPECT_EQ(lbl.dim(0), cfg.batchSize);
    EXPECT_EQ(lbl.dim(1), cfg.height);
    for (int64_t i = 0; i < lbl.size(); ++i) {
        EXPECT_GE(lbl[i], 0.0f);
        EXPECT_LT(lbl[i], (float)cfg.numClasses);
    }
}

TEST(Segmentation, ContainsForegroundObjects)
{
    data::SegSetConfig cfg;
    auto task = data::makeSegmentation(cfg);
    int64_t fg = 0, total = 0;
    for (const auto &lbl : task.train.labels)
        for (int64_t i = 0; i < lbl.size(); ++i) {
            fg += lbl[i] > 0.0f;
            ++total;
        }
    const double ratio = (double)fg / (double)total;
    EXPECT_GT(ratio, 0.05);
    EXPECT_LT(ratio, 0.9);
}

} // namespace
} // namespace se
