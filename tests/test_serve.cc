/**
 * @file
 * Tests of the se::serve layer: InferenceSession weight rebuild
 * policies and fidelity against the eager install path, ServeEngine
 * batching/fan-out correctness, and the determinism wall — responses
 * must be bit-identical across thread counts, batch sizes and flush
 * policies.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstring>
#include <future>
#include <thread>

#include "base/failpoint.hh"
#include "base/hash.hh"
#include "base/random.hh"
#include "core/stream_loader.hh"
#include "nn/blocks.hh"
#include "serve/engine.hh"
#include "serve/front.hh"
#include "serve/latency.hh"
#include "serve/session.hh"

namespace se {
namespace {

constexpr int64_t kInC = 3, kInH = 6, kInW = 6, kClasses = 10;

/** A compact CNN with all three reshape rules and a real forward. */
std::unique_ptr<nn::Sequential>
makeServeCnn(uint64_t seed)
{
    Rng rng(seed);
    auto net = std::make_unique<nn::Sequential>();
    net->add<nn::Conv2d>(kInC, 8, 3, 1, 1, 1, rng, false);
    net->add<nn::BatchNorm2d>(8);
    net->add<nn::ReLU>();
    net->add<nn::Conv2d>(8, 16, 1, 1, 0, 1, rng, false);
    net->add<nn::ReLU>();
    net->add<nn::GlobalAvgPool>();
    net->add<nn::Flatten>();
    net->add<nn::Linear>(16, kClasses, rng, false);
    return net;
}

struct ShippedModel
{
    std::shared_ptr<const std::vector<core::SeLayerRecord>> records;
    std::unique_ptr<nn::Sequential> reference;  ///< eager-installed
    core::SeOptions seOpts;
    core::ApplyOptions applyOpts;
};

ShippedModel
shipModel(uint64_t seed = 51)
{
    ShippedModel s;
    s.seOpts.vectorThreshold = 0.01;
    s.reference = makeServeCnn(seed);
    auto compressed =
        core::compressToRecords(*s.reference, s.seOpts, s.applyOpts);
    s.records = std::make_shared<std::vector<core::SeLayerRecord>>(
        std::move(compressed.records));
    return s;
}

Tensor
makeInput(uint64_t seed, int64_t n = 1)
{
    Rng rng(seed);
    return randn({n, kInC, kInH, kInW}, rng, 0.0f, 1.0f);
}

// ------------------------------------------------- InferenceSession

TEST(InferenceSession, MatchesEagerInstallBitForBit)
{
    auto shipped = shipModel(51);
    serve::InferenceSession session(makeServeCnn(51), shipped.records,
                                    shipped.seOpts,
                                    shipped.applyOpts);
    EXPECT_EQ(session.rebuildableLayers(), shipped.records->size());

    Tensor x = makeInput(1, 4);
    Tensor ref = shipped.reference->forward(x, false);
    Tensor got = session.forward(x);
    ASSERT_EQ(got.shape(), ref.shape());
    EXPECT_EQ(std::memcmp(got.data(), ref.data(),
                          (size_t)got.size() * sizeof(float)),
              0);
}

TEST(InferenceSession, CachedModeRebuildsEachLayerOnce)
{
    auto shipped = shipModel(52);
    serve::InferenceSession session(makeServeCnn(52), shipped.records,
                                    shipped.seOpts,
                                    shipped.applyOpts);
    const auto layers = (uint64_t)session.rebuildableLayers();
    Tensor x = makeInput(2);
    session.forward(x);
    session.forward(x);
    session.forward(x);
    EXPECT_EQ(session.stats().coldRebuilds, layers);
    EXPECT_EQ(session.stats().warmRebuilds, 0u);
    EXPECT_EQ(session.stats().forwardCalls, 3u);
}

TEST(InferenceSession, PerCallModeRebuildsEveryForward)
{
    auto shipped = shipModel(53);
    serve::SessionOptions warm_opts;
    warm_opts.rebuildPerCall = true;
    warm_opts.cacheRebuiltWeights = true;
    serve::InferenceSession warm(makeServeCnn(53), shipped.records,
                                 shipped.seOpts, shipped.applyOpts,
                                 warm_opts);
    const auto layers = (uint64_t)warm.rebuildableLayers();
    Tensor x = makeInput(3);
    Tensor y1 = warm.forward(x);
    Tensor y2 = warm.forward(x);
    // First call cold, second restored from the per-layer cache.
    EXPECT_EQ(warm.stats().coldRebuilds, layers);
    EXPECT_EQ(warm.stats().warmRebuilds, layers);
    EXPECT_EQ(std::memcmp(y1.data(), y2.data(),
                          (size_t)y1.size() * sizeof(float)),
              0);

    serve::SessionOptions cold_opts;
    cold_opts.rebuildPerCall = true;
    cold_opts.cacheRebuiltWeights = false;
    serve::InferenceSession cold(makeServeCnn(53), shipped.records,
                                 shipped.seOpts, shipped.applyOpts,
                                 cold_opts);
    cold.forward(x);
    cold.forward(x);
    EXPECT_EQ(cold.stats().coldRebuilds, 2 * layers);
    EXPECT_EQ(cold.stats().warmRebuilds, 0u);
}

TEST(InferenceSession, InvalidateThenWarmRebuild)
{
    auto shipped = shipModel(54);
    serve::InferenceSession session(makeServeCnn(54), shipped.records,
                                    shipped.seOpts,
                                    shipped.applyOpts);
    const auto layers = (uint64_t)session.rebuildableLayers();
    Tensor x = makeInput(4);
    Tensor y1 = session.forward(x);
    session.invalidateWeights();
    Tensor y2 = session.forward(x);
    EXPECT_EQ(session.stats().coldRebuilds, layers);
    EXPECT_EQ(session.stats().warmRebuilds, layers);
    EXPECT_EQ(std::memcmp(y1.data(), y2.data(),
                          (size_t)y1.size() * sizeof(float)),
              0);

    session.clearRebuildCache();
    Tensor y3 = session.forward(x);
    EXPECT_EQ(session.stats().coldRebuilds, 2 * layers);
    EXPECT_EQ(std::memcmp(y1.data(), y3.data(),
                          (size_t)y1.size() * sizeof(float)),
              0);
}

TEST(InferenceSession, RejectsMismatchedArchitecture)
{
    auto shipped = shipModel(55);
    Rng rng(56);
    auto wrong = std::make_unique<nn::Sequential>();
    wrong->add<nn::Conv2d>(kInC, 4, 3, 1, 1, 1, rng, false);
    wrong->add<nn::Linear>(16, kClasses, rng, false);
    EXPECT_THROW(serve::InferenceSession(std::move(wrong),
                                         shipped.records,
                                         shipped.seOpts,
                                         shipped.applyOpts),
                 core::ModelFileError);
}

// ------------------------------------------------------ ServeEngine

TEST(ServeEngine, AnswersMatchDirectSessionForward)
{
    auto shipped = shipModel(61);
    serve::ServeOptions opts;
    opts.threads = 2;
    opts.maxBatch = 4;
    serve::ServeEngine engine(
        shipped.records, [] { return makeServeCnn(61); },
        shipped.seOpts, shipped.applyOpts, opts);
    EXPECT_EQ(engine.replicaCount(), 2);

    const int n = 17;
    std::vector<std::future<Tensor>> futs;
    for (int i = 0; i < n; ++i)
        futs.push_back(engine.submit(
            makeInput(100 + (uint64_t)i).reshaped(
                {kInC, kInH, kInW})));
    engine.drain();

    for (int i = 0; i < n; ++i) {
        Tensor got = futs[(size_t)i].get();
        Tensor ref = shipped.reference->forward(
            makeInput(100 + (uint64_t)i), false);
        ASSERT_EQ(got.size(), ref.size());
        EXPECT_EQ(std::memcmp(got.data(), ref.data(),
                              (size_t)got.size() * sizeof(float)),
                  0)
            << "request " << i;
    }

    auto st = engine.stats();
    EXPECT_EQ(st.requests, (uint64_t)n);
    EXPECT_GE(st.batches, 1u);
    EXPECT_LE(st.p50Ms, st.p95Ms);
    EXPECT_LE(st.p95Ms, st.p99Ms);
    EXPECT_LE(st.p99Ms, st.maxMs);
}

TEST(ServeEngine, DeterministicAcrossThreadsBatchingAndPolicies)
{
    auto shipped = shipModel(62);
    const int n = 23;

    struct Config
    {
        int threads;
        size_t maxBatch;
        serve::FlushPolicy flush;
        bool rebuildPerCall;
    };
    const Config configs[] = {
        {0, 1, serve::FlushPolicy::Greedy, false},
        {1, 4, serve::FlushPolicy::Greedy, false},
        {8, 3, serve::FlushPolicy::Greedy, false},
        {8, 8, serve::FlushPolicy::Full, false},
        {2, 5, serve::FlushPolicy::Greedy, true},
        {2, 6, serve::FlushPolicy::Deadline, false},
        {0, 4, serve::FlushPolicy::Deadline, true},
    };

    std::vector<uint64_t> digests;
    for (const Config &cfg : configs) {
        serve::ServeOptions opts;
        opts.threads = cfg.threads;
        opts.maxBatch = cfg.maxBatch;
        opts.flush = cfg.flush;
        opts.session.rebuildPerCall = cfg.rebuildPerCall;
        serve::ServeEngine engine(
            shipped.records, [] { return makeServeCnn(62); },
            shipped.seOpts, shipped.applyOpts, opts);

        std::vector<std::future<Tensor>> futs;
        for (int i = 0; i < n; ++i)
            futs.push_back(
                engine.submit(makeInput(200 + (uint64_t)i)));
        engine.drain();

        uint64_t digest = kFnvOffsetBasis;
        for (auto &f : futs)
            digest = hashTensor(f.get(), digest);
        digests.push_back(digest);
    }
    for (size_t i = 1; i < digests.size(); ++i)
        EXPECT_EQ(digests[i], digests[0])
            << "config " << i << " produced different responses";
}

TEST(ServeEngine, FullFlushPolicyWaitsForFullBatches)
{
    auto shipped = shipModel(63);
    serve::ServeOptions opts;
    opts.threads = 1;
    opts.maxBatch = 4;
    opts.flush = serve::FlushPolicy::Full;
    serve::ServeEngine engine(
        shipped.records, [] { return makeServeCnn(63); },
        shipped.seOpts, shipped.applyOpts, opts);

    // 4 requests = exactly one full batch; drain flushes nothing.
    std::vector<std::future<Tensor>> futs;
    for (int i = 0; i < 4; ++i)
        futs.push_back(engine.submit(makeInput((uint64_t)i)));
    engine.drain();
    EXPECT_EQ(engine.stats().batches, 1u);
    EXPECT_DOUBLE_EQ(engine.stats().meanBatchSize, 4.0);

    // 3 more sit below the threshold until drain flushes them.
    for (int i = 0; i < 3; ++i)
        futs.push_back(engine.submit(makeInput((uint64_t)i)));
    engine.drain();
    EXPECT_EQ(engine.stats().requests, 7u);
    for (auto &f : futs)
        EXPECT_NO_THROW(f.get());
}

TEST(ServeEngine, MalformedShapeFailsOnlyItselfNotItsNeighbors)
{
    // Regression: a malformed request used to poison its whole
    // micro-batch (runBatch threw "mixed sample shapes" and failed
    // every neighbor). Admission-time validation must reject only
    // the malformed request.
    auto shipped = shipModel(64);
    serve::ServeOptions opts;
    opts.threads = 0;  // inline: everything lands in one batch
    opts.maxBatch = 64;
    opts.flush = serve::FlushPolicy::Full;
    serve::ServeEngine engine(
        shipped.records, [] { return makeServeCnn(64); },
        shipped.seOpts, shipped.applyOpts, opts);

    // Mixed-shape flood: good and bad interleaved.
    const int rounds = 10;
    std::vector<std::future<Tensor>> good, bad;
    Rng rng(2);
    for (int i = 0; i < rounds; ++i) {
        good.push_back(engine.submit(makeInput((uint64_t)i)));
        bad.push_back(
            engine.submit(randn({kInC, kInH + 1, kInW}, rng)));
        // A 4-D input with batch dim != 1 is malformed too.
        bad.push_back(
            engine.submit(randn({2, kInC, kInH, kInW}, rng)));
    }
    engine.drain();
    for (auto &f : bad)
        EXPECT_THROW(f.get(), std::invalid_argument);
    for (auto &f : good)
        EXPECT_NO_THROW(f.get());  // every well-formed neighbor answers
    const auto st = engine.stats();
    EXPECT_EQ(st.requests, (uint64_t)rounds);
    EXPECT_EQ(st.rejected, (uint64_t)(2 * rounds));
    EXPECT_EQ(st.failed, 0u);
}

TEST(ServeEngine, ExpectedSampleOptionPinsTheShapeUpFront)
{
    auto shipped = shipModel(66);
    serve::ServeOptions opts;
    opts.threads = 0;
    opts.expectedSample = {kInC, kInH, kInW};
    serve::ServeEngine engine(
        shipped.records, [] { return makeServeCnn(66); },
        shipped.seOpts, shipped.applyOpts, opts);

    // With the shape pinned, even the FIRST request can be rejected
    // (no first-request lock-in ambiguity).
    Rng rng(3);
    auto bad = engine.submit(randn({kInC, kInH, kInW + 2}, rng));
    auto good = engine.submit(makeInput(1));
    engine.drain();
    EXPECT_THROW(bad.get(), std::invalid_argument);
    EXPECT_NO_THROW(good.get());
    EXPECT_EQ(engine.stats().rejected, 1u);
    EXPECT_EQ(engine.stats().requests, 1u);
}

TEST(ServeEngine, QueueCapShedsWithAdmissionError)
{
    auto shipped = shipModel(67);
    serve::ServeOptions opts;
    opts.threads = 0;
    opts.maxBatch = 64;
    opts.flush = serve::FlushPolicy::Full;  // hold the queue: builds
                                            // a backlog deterministically
    opts.queueCap = 4;
    serve::ServeEngine engine(
        shipped.records, [] { return makeServeCnn(67); },
        shipped.seOpts, shipped.applyOpts, opts);

    std::vector<std::future<Tensor>> futs;
    for (int i = 0; i < 4; ++i)
        futs.push_back(engine.submit(makeInput((uint64_t)i)));
    // Queue is at capacity and nothing dispatches under Full: the
    // next submits must shed, fail-fast and typed.
    EXPECT_THROW(engine.submit(makeInput(9)), serve::AdmissionError);
    EXPECT_THROW(engine.submit(makeInput(10)), serve::AdmissionError);
    engine.drain();
    for (auto &f : futs)
        EXPECT_NO_THROW(f.get());
    const auto st = engine.stats();
    EXPECT_EQ(st.shed, 2u);
    EXPECT_EQ(st.requests, 4u);
    // After the drain the queue has room again.
    auto late = engine.submit(makeInput(11));
    engine.drain();
    EXPECT_NO_THROW(late.get());
}

TEST(ServeEngine, SubmitOnStoppedEngineThrowsInsteadOfPanicking)
{
    // Regression: submit() after stop used to SE_ASSERT -> SE_PANIC
    // and kill the process.
    auto shipped = shipModel(68);
    serve::ServeOptions opts;
    opts.threads = 1;
    serve::ServeEngine engine(
        shipped.records, [] { return makeServeCnn(68); },
        shipped.seOpts, shipped.applyOpts, opts);
    auto before = engine.submit(makeInput(1));
    engine.stop();
    // stop() answers everything already accepted...
    EXPECT_NO_THROW(before.get());
    // ...and later submits throw a catchable typed error.
    EXPECT_THROW(engine.submit(makeInput(2)),
                 serve::EngineStoppedError);
    EXPECT_THROW(engine.submit(makeInput(3)), std::runtime_error);
    engine.stop();  // idempotent
}

TEST(ServeEngine, DeadlinePolicyFlushesPartialBatchWithoutDrain)
{
    auto shipped = shipModel(69);
    serve::ServeOptions opts;
    opts.threads = 1;
    opts.maxBatch = 32;
    opts.flush = serve::FlushPolicy::Deadline;
    opts.flushDeadlineMs = 5.0;
    serve::ServeEngine engine(
        shipped.records, [] { return makeServeCnn(69); },
        shipped.seOpts, shipped.applyOpts, opts);

    // 3 requests < maxBatch: Full would hold them until drain(); the
    // deadline must close the batch by itself.
    std::vector<std::future<Tensor>> futs;
    for (int i = 0; i < 3; ++i)
        futs.push_back(engine.submit(makeInput((uint64_t)i)));
    for (auto &f : futs)
        ASSERT_EQ(f.wait_for(std::chrono::seconds(30)),
                  std::future_status::ready)
            << "deadline flush never fired";
    for (auto &f : futs)
        EXPECT_NO_THROW(f.get());
    EXPECT_EQ(engine.stats().requests, 3u);
}

TEST(ServeEngine, StatsIncludeEveryRequestWhoseFutureIsReady)
{
    // Regression (surfaced as a flake under `ctest -j2` machine
    // load): runBatch used to set promise values BEFORE committing
    // latencies under stats_mu_, so a waiter that woke on its future
    // and immediately called stats() could read requests == 0 after a
    // successful get(). The contract is now commit-then-fulfill: a
    // ready future implies its request is visible in stats(). The
    // serve_publish_delay failpoint parks the batch worker for 1ms at
    // the publish instant, turning the one-in-a-thousand preemption
    // into a deterministic one — this test fails every iteration
    // under the old ordering.
    failpoint::ScopedArm delay("serve_publish_delay", "after0");
    auto shipped = shipModel(75);
    serve::ServeOptions opts;
    opts.threads = 1;
    serve::ServeEngine engine(
        shipped.records, [] { return makeServeCnn(75); },
        shipped.seOpts, shipped.applyOpts, opts);

    for (uint64_t i = 0; i < 50; ++i) {
        auto fut = engine.submit(makeInput(i));
        ASSERT_NO_THROW(fut.get());
        EXPECT_EQ(engine.stats().requests, i + 1)
            << "future ready but stats() missed the request "
               "(iteration "
            << i << ")";
    }
}

TEST(ServeEngine, ConcurrentDrainersAllObserveTheFlush)
{
    // Regression: `draining_` was a bool reset by whichever drainer
    // woke first; the loser could wait forever behind a Full hold.
    auto shipped = shipModel(70);
    serve::ServeOptions opts;
    opts.threads = 1;
    opts.maxBatch = 16;
    opts.flush = serve::FlushPolicy::Full;
    serve::ServeEngine engine(
        shipped.records, [] { return makeServeCnn(70); },
        shipped.seOpts, shipped.applyOpts, opts);

    for (int round = 0; round < 3; ++round) {
        std::vector<std::future<Tensor>> futs;
        for (int i = 0; i < 5; ++i)  // below maxBatch: needs a flush
            futs.push_back(engine.submit(makeInput((uint64_t)i)));
        std::thread d1([&] { engine.drain(); });
        std::thread d2([&] { engine.drain(); });
        d1.join();
        d2.join();
        for (auto &f : futs)
            ASSERT_EQ(f.wait_for(std::chrono::seconds(0)),
                      std::future_status::ready);
    }
    EXPECT_EQ(engine.stats().requests, 15u);
}

// ------------------------------------------------ LatencyReservoir

TEST(LatencyReservoir, HoldsConstantMemoryUnderAMillionAdds)
{
    // Regression: engine latency history used to grow without bound.
    serve::LatencyReservoir res(512);
    Rng rng(7);
    for (int i = 0; i < 1000000; ++i)
        res.add(rng.uniform(0.0f, 10.0f));
    EXPECT_EQ(res.count(), 1000000u);
    EXPECT_LE(res.sampleSize(), 512u);  // constant, not 1e6
    EXPECT_LE(res.sortedSample().size(), 512u);
}

TEST(LatencyReservoir, KnownDistributionStatsWithinSamplingError)
{
    // Uniform 0..9999 presented in shuffled order: exact running
    // aggregates, percentiles within reservoir sampling error.
    const int n = 10000;
    std::vector<double> values;
    values.reserve((size_t)n);
    for (int i = 0; i < n; ++i)
        values.push_back((double)i);
    Rng rng(11);
    std::shuffle(values.begin(), values.end(), rng.raw());

    serve::LatencyReservoir res(1024);
    for (double v : values)
        res.add(v);

    EXPECT_EQ(res.count(), (uint64_t)n);
    EXPECT_DOUBLE_EQ(res.max(), 9999.0);        // exact
    EXPECT_NEAR(res.mean(), 4999.5, 1e-9);      // exact running sum
    const auto sorted = res.sortedSample();
    ASSERT_EQ(sorted.size(), 1024u);
    // 1024 uniform samples: the qth sample quantile has stddev
    // ~ n*sqrt(q(1-q)/1024) ≈ 156 at q=0.5; 5 sigma bounds.
    const auto pct = [&](double q) {
        return sorted[std::min(
            sorted.size() - 1,
            (size_t)(q * (double)sorted.size()))];
    };
    EXPECT_NEAR(pct(0.50), 0.50 * n, 800.0);
    EXPECT_NEAR(pct(0.95), 0.95 * n, 500.0);
    EXPECT_NEAR(pct(0.99), 0.99 * n, 300.0);
}

TEST(LatencyReservoir, SmallStreamsAreExact)
{
    serve::LatencyReservoir res(100);
    for (int i = 1; i <= 10; ++i)
        res.add((double)i);
    EXPECT_EQ(res.count(), 10u);
    EXPECT_EQ(res.sampleSize(), 10u);  // below cap: the full stream
    EXPECT_DOUBLE_EQ(res.mean(), 5.5);
    EXPECT_DOUBLE_EQ(res.max(), 10.0);
    EXPECT_DOUBLE_EQ(res.sortedSample().front(), 1.0);
}

TEST(ServeEngine, StatsStayBoundedAndCorrectUnderSustainedTraffic)
{
    // Engine-level soak at a tiny reservoir cap: counters stay exact
    // while the percentile source stays bounded.
    auto shipped = shipModel(71);
    serve::ServeOptions opts;
    opts.threads = 2;
    opts.maxBatch = 8;
    opts.latencyReservoirCap = 32;
    serve::ServeEngine engine(
        shipped.records, [] { return makeServeCnn(71); },
        shipped.seOpts, shipped.applyOpts, opts);

    const int n = 300;
    std::vector<std::future<Tensor>> futs;
    futs.reserve((size_t)n);
    for (int i = 0; i < n; ++i)
        futs.push_back(engine.submit(makeInput((uint64_t)(i % 7))));
    engine.drain();
    for (auto &f : futs)
        EXPECT_NO_THROW(f.get());
    const auto st = engine.stats();
    EXPECT_EQ(st.requests, (uint64_t)n);  // exact despite sampling
    EXPECT_GT(st.meanLatencyMs, 0.0);
    EXPECT_LE(st.p50Ms, st.p95Ms);
    EXPECT_LE(st.p95Ms, st.p99Ms);
    EXPECT_LE(st.p99Ms, st.maxMs);
}

// ------------------------------------------------------- ServeFront

/** A second, structurally different architecture for multi-model. */
std::unique_ptr<nn::Sequential>
makeServeMlpCnn(uint64_t seed)
{
    Rng rng(seed);
    auto net = std::make_unique<nn::Sequential>();
    net->add<nn::Conv2d>(kInC, 6, 3, 1, 1, 1, rng, false);
    net->add<nn::ReLU>();
    net->add<nn::GlobalAvgPool>();
    net->add<nn::Flatten>();
    net->add<nn::Linear>(6, 12, rng, false);
    net->add<nn::ReLU>();
    net->add<nn::Linear>(12, kClasses, rng, false);
    return net;
}

TEST(ServeFront, TwoModelsServeConcurrentlyBitIdentical)
{
    auto shippedA = shipModel(81);

    ShippedModel shippedB;
    shippedB.seOpts.vectorThreshold = 0.01;
    shippedB.reference = makeServeMlpCnn(82);
    auto compressedB = core::compressToRecords(
        *shippedB.reference, shippedB.seOpts, shippedB.applyOpts);
    shippedB.records =
        std::make_shared<std::vector<core::SeLayerRecord>>(
            std::move(compressedB.records));

    serve::ModelRegistry reg;
    reg.add("cnn-a", {shippedA.records,
                      [] { return makeServeCnn(81); },
                      shippedA.seOpts, shippedA.applyOpts});
    reg.add("mlp-b", {shippedB.records,
                      [] { return makeServeMlpCnn(82); },
                      shippedB.seOpts, shippedB.applyOpts});
    EXPECT_TRUE(reg.contains("cnn-a"));
    EXPECT_FALSE(reg.contains("cnn-c"));
    EXPECT_THROW(reg.at("cnn-c"), serve::UnknownModelError);
    EXPECT_THROW(
        reg.add("cnn-a", {shippedA.records,
                          [] { return makeServeCnn(81); },
                          shippedA.seOpts, shippedA.applyOpts}),
        std::invalid_argument);

    serve::ServeOptions opts;
    opts.threads = 4;  // split 2+2 across the models
    opts.maxBatch = 4;
    serve::ServeFront front(reg, opts);
    EXPECT_EQ(front.modelCount(), 2u);
    EXPECT_EQ(front.replicaCount(), 4);

    const int n = 12;
    std::vector<std::future<Tensor>> futA, futB;
    for (int i = 0; i < n; ++i) {  // interleaved two-tenant traffic
        futA.push_back(
            front.submit("cnn-a", makeInput(300 + (uint64_t)i)));
        futB.push_back(
            front.submit("mlp-b", makeInput(400 + (uint64_t)i)));
    }
    EXPECT_THROW(front.submit("nope", makeInput(1)),
                 serve::UnknownModelError);
    front.drain();

    // Responses must be bit-identical to each model's single-model
    // reference forward.
    for (int i = 0; i < n; ++i) {
        Tensor gotA = futA[(size_t)i].get();
        Tensor refA = shippedA.reference->forward(
            makeInput(300 + (uint64_t)i), false);
        ASSERT_EQ(gotA.size(), refA.size());
        EXPECT_EQ(std::memcmp(gotA.data(), refA.data(),
                              (size_t)gotA.size() * sizeof(float)),
                  0)
            << "cnn-a request " << i;
        Tensor gotB = futB[(size_t)i].get();
        Tensor refB = shippedB.reference->forward(
            makeInput(400 + (uint64_t)i), false);
        ASSERT_EQ(gotB.size(), refB.size());
        EXPECT_EQ(std::memcmp(gotB.data(), refB.data(),
                              (size_t)gotB.size() * sizeof(float)),
                  0)
            << "mlp-b request " << i;
    }

    EXPECT_EQ(front.stats("cnn-a").requests, (uint64_t)n);
    EXPECT_EQ(front.stats("mlp-b").requests, (uint64_t)n);
    const auto agg = front.aggregateStats();
    EXPECT_EQ(agg.requests, (uint64_t)(2 * n));
    EXPECT_EQ(agg.failed + agg.rejected + agg.shed, 0u);

    front.stop();
    EXPECT_THROW(front.submit("cnn-a", makeInput(1)),
                 serve::EngineStoppedError);
}

TEST(ServeFront, PerModelShapeIsolation)
{
    // Each engine locks its own shape; one tenant's malformed
    // traffic never disturbs the other tenant.
    auto shipped = shipModel(83);
    serve::ModelRegistry reg;
    reg.add("m1", {shipped.records, [] { return makeServeCnn(83); },
                   shipped.seOpts, shipped.applyOpts});
    reg.add("m2", {shipped.records, [] { return makeServeCnn(83); },
                   shipped.seOpts, shipped.applyOpts});
    serve::ServeOptions opts;
    opts.threads = 0;
    opts.expectedSample = {kInC, kInH, kInW};
    serve::ServeFront front(reg, opts);

    auto ok1 = front.submit("m1", makeInput(1));
    Rng rng(4);
    auto bad2 =
        front.submit("m2", randn({kInC, kInH + 2, kInW}, rng));
    auto ok2 = front.submit("m2", makeInput(2));
    front.drain();
    EXPECT_NO_THROW(ok1.get());
    EXPECT_NO_THROW(ok2.get());
    EXPECT_THROW(bad2.get(), std::invalid_argument);
    EXPECT_EQ(front.stats("m1").rejected, 0u);
    EXPECT_EQ(front.stats("m2").rejected, 1u);
}

// -------------------------------------- CeDirect quantized serving

TEST(InferenceSession, CeDirectBitIdenticalToDense)
{
    auto shipped = shipModel(91);
    serve::InferenceSession dense(makeServeCnn(91), shipped.records,
                                  shipped.seOpts, shipped.applyOpts);
    serve::SessionOptions ce_opts;
    ce_opts.weightSource = serve::WeightSource::CeDirect;
    ce_opts.cacheRebuiltWeights = false;  // every rebuild decodes
    ce_opts.rebuildPerCall = true;
    serve::InferenceSession ce(makeServeCnn(91), shipped.records,
                               shipped.seOpts, shipped.applyOpts,
                               ce_opts);
    EXPECT_GE(ce.stats().packMs, 0.0);

    for (int i = 0; i < 4; ++i) {
        Tensor x = makeInput(500 + (uint64_t)i, 3);
        Tensor yd = dense.forward(x);
        Tensor yc = ce.forward(x);
        ASSERT_EQ(yd.shape(), yc.shape());
        EXPECT_EQ(std::memcmp(yd.data(), yc.data(),
                              (size_t)yd.size() * sizeof(float)),
                  0)
            << "request " << i;
    }
}

TEST(ServeFront, QuantizedEngineABsAgainstFloatEngineOfSameBundle)
{
    // The ISCA story end-to-end: one bundle, two tenants — a Dense
    // engine and a CeDirect engine — answering identical traffic
    // with identical bits and separate per-tenant stats.
    auto shipped = shipModel(92);
    serve::ModelRegistry reg;
    serve::ModelEntry dense_entry{shipped.records,
                                  [] { return makeServeCnn(92); },
                                  shipped.seOpts, shipped.applyOpts};
    serve::ModelEntry ce_entry = dense_entry;
    ce_entry.weightSource = serve::WeightSource::CeDirect;
    reg.add("dense", dense_entry);
    reg.add("ce4", ce_entry);

    serve::ServeOptions opts;
    opts.threads = 2;
    opts.maxBatch = 4;
    opts.session.rebuildPerCall = true;  // rebuilds on every batch
    opts.session.cacheRebuiltWeights = false;
    serve::ServeFront front(reg, opts);

    const int n = 10;
    std::vector<std::future<Tensor>> fd, fc;
    for (int i = 0; i < n; ++i) {
        fd.push_back(
            front.submit("dense", makeInput(600 + (uint64_t)i)));
        fc.push_back(
            front.submit("ce4", makeInput(600 + (uint64_t)i)));
    }
    front.drain();
    for (int i = 0; i < n; ++i) {
        Tensor yd = fd[(size_t)i].get();
        Tensor yc = fc[(size_t)i].get();
        ASSERT_EQ(yd.size(), yc.size());
        EXPECT_EQ(std::memcmp(yd.data(), yc.data(),
                              (size_t)yd.size() * sizeof(float)),
                  0)
            << "request " << i;
    }
    EXPECT_EQ(front.stats("dense").requests, (uint64_t)n);
    EXPECT_EQ(front.stats("ce4").requests, (uint64_t)n);
}

TEST(ServeFront, PrunedV3BundleServesWithNoOutOfBandRestore)
{
    // Compress WITH channel pruning, ship as v3, reload, and serve
    // through the front from the bundle alone: the reference is the
    // compression-time net itself.
    core::SeOptions se_opts;
    se_opts.vectorThreshold = 0.01;
    core::ApplyOptions apply_opts;
    apply_opts.channelGammaThreshold = 1e-3;

    auto reference = makeServeCnn(93);
    // Deterministically knock two BN channels under the threshold and
    // give the running stats non-factory values.
    reference->visit([&](nn::Layer &l) {
        if (auto *bn = dynamic_cast<nn::BatchNorm2d *>(&l)) {
            bn->gammaTensor()[1] = 1e-4f;
            bn->gammaTensor()[3] = 1e-4f;
            for (int64_t c = 0;
                 c < bn->runningMeanTensor().size(); ++c) {
                bn->runningMeanTensor()[c] = 0.05f * (float)(c + 1);
                bn->runningVarTensor()[c] = 1.0f + 0.1f * (float)c;
            }
        }
    });
    auto compressed =
        core::compressToRecords(*reference, se_opts, apply_opts);
    ASSERT_FALSE(compressed.dense.empty());

    std::stringstream ss;
    core::saveModelV3(ss, compressed.records, compressed.dense);
    auto bundle = core::loadModelBundle(ss);

    serve::ModelRegistry reg;
    reg.add("pruned-dense",
            serve::makeModelEntry(bundle,
                                  [] { return makeServeCnn(93); },
                                  se_opts, apply_opts));
    reg.add("pruned-ce4",
            serve::makeModelEntry(std::move(bundle),
                                  [] { return makeServeCnn(93); },
                                  se_opts, apply_opts,
                                  serve::WeightSource::CeDirect));
    serve::ServeOptions opts;
    opts.threads = 2;
    opts.maxBatch = 4;
    serve::ServeFront front(reg, opts);

    const int n = 8;
    std::vector<std::future<Tensor>> fd, fc;
    for (int i = 0; i < n; ++i) {
        fd.push_back(front.submit("pruned-dense",
                                  makeInput(700 + (uint64_t)i)));
        fc.push_back(front.submit("pruned-ce4",
                                  makeInput(700 + (uint64_t)i)));
    }
    front.drain();
    for (int i = 0; i < n; ++i) {
        Tensor ref = reference->forward(
            makeInput(700 + (uint64_t)i), false);
        Tensor yd = fd[(size_t)i].get();
        Tensor yc = fc[(size_t)i].get();
        ASSERT_EQ(yd.size(), ref.size());
        EXPECT_EQ(std::memcmp(yd.data(), ref.data(),
                              (size_t)ref.size() * sizeof(float)),
                  0)
            << "dense request " << i;
        EXPECT_EQ(std::memcmp(yc.data(), ref.data(),
                              (size_t)ref.size() * sizeof(float)),
                  0)
            << "ce4 request " << i;
    }
}

TEST(InferenceSession, DenseStateInstallRejectsWrongFactory)
{
    // A v3 dense residual bound to a structurally different factory
    // must throw at construction, never serve garbage.
    core::SeOptions se_opts;
    se_opts.vectorThreshold = 0.01;
    core::ApplyOptions apply_opts;
    auto net = makeServeCnn(94);
    auto compressed =
        core::compressToRecords(*net, se_opts, apply_opts);
    ASSERT_FALSE(compressed.dense.empty());
    compressed.dense.pop_back();  // incomplete residual

    serve::SessionOptions opts;
    opts.denseState =
        std::make_shared<const std::vector<core::DenseTensor>>(
            std::move(compressed.dense));
    auto records =
        std::make_shared<const std::vector<core::SeLayerRecord>>(
            std::move(compressed.records));
    EXPECT_THROW(
        serve::InferenceSession(makeServeCnn(94), records, se_opts,
                                apply_opts, opts),
        core::ModelFileError);
}

TEST(ServeEngine, CeDirectDeterministicAcrossThreadsAndBatching)
{
    // The determinism wall extended to the quantized path.
    auto shipped = shipModel(95);
    const int n = 15;
    std::vector<uint64_t> digests;
    for (const auto &[threads, batch] :
         std::vector<std::pair<int, size_t>>{
             {0, 1}, {1, 4}, {4, 3}, {2, 8}}) {
        serve::ServeOptions opts;
        opts.threads = threads;
        opts.maxBatch = batch;
        opts.session.weightSource = serve::WeightSource::CeDirect;
        serve::ServeEngine engine(
            shipped.records, [] { return makeServeCnn(95); },
            shipped.seOpts, shipped.applyOpts, opts);
        std::vector<std::future<Tensor>> futs;
        for (int i = 0; i < n; ++i)
            futs.push_back(
                engine.submit(makeInput(800 + (uint64_t)i)));
        engine.drain();
        uint64_t digest = kFnvOffsetBasis;
        for (auto &f : futs)
            digest = hashTensor(f.get(), digest);
        digests.push_back(digest);
    }
    for (size_t i = 1; i < digests.size(); ++i)
        EXPECT_EQ(digests[i], digests[0]) << "config " << i;

    // And the quantized digests equal the dense reference's.
    serve::InferenceSession dense(makeServeCnn(95), shipped.records,
                                  shipped.seOpts, shipped.applyOpts);
    uint64_t ref = kFnvOffsetBasis;
    for (int i = 0; i < n; ++i) {
        Tensor y = dense.forward(makeInput(800 + (uint64_t)i));
        ref = hashTensor(y.reshaped({y.size()}), ref);
    }
    EXPECT_EQ(digests[0], ref);
}

TEST(ServeEngine, HeavyTrafficManyWaiters)
{
    auto shipped = shipModel(65);
    serve::ServeOptions opts;
    opts.threads = 4;
    opts.maxBatch = 6;
    serve::ServeEngine engine(
        shipped.records, [] { return makeServeCnn(65); },
        shipped.seOpts, shipped.applyOpts, opts);

    const int n = 200;
    std::vector<std::future<Tensor>> futs;
    futs.reserve((size_t)n);
    for (int i = 0; i < n; ++i)
        futs.push_back(engine.submit(makeInput((uint64_t)(i % 5))));
    engine.drain();
    for (int i = 0; i < n; ++i) {
        Tensor r = futs[(size_t)i].get();
        EXPECT_EQ(r.size(), kClasses);
    }
    auto st = engine.stats();
    EXPECT_EQ(st.requests, (uint64_t)n);
    EXPECT_GE(st.meanBatchSize, 1.0);
}

// ------------------------------------ model-file v4 streamed serving

/**
 * Compress a makeServeCnn(seed), pin its bases to the int8 grid (the
 * v4 compress-time contract) and write the v4 bundle to `path`. The
 * returned net is the quantized compression-time reference every
 * served response must bit-match.
 */
std::unique_ptr<nn::Sequential>
shipV4Model(uint64_t seed, const std::string &path,
            const core::SeOptions &se_opts,
            const core::ApplyOptions &apply_opts)
{
    auto reference = makeServeCnn(seed);
    auto compressed =
        core::compressToRecords(*reference, se_opts, apply_opts);
    core::quantizeBasisAtCompress(*reference, compressed, se_opts,
                                  apply_opts);
    core::saveModelV4File(path, compressed.bundle());
    return reference;
}

TEST(ServeFrontV4, V4BundleServesDenseAndCeDirectBitIdentical)
{
    core::SeOptions se_opts;
    se_opts.vectorThreshold = 0.01;
    core::ApplyOptions apply_opts;
    const std::string path = "/tmp/se_serve_v4_ab.sexm";
    auto reference = shipV4Model(96, path, se_opts, apply_opts);

    // One v4 file, opened lazily once, served by two tenants — a
    // Dense engine and a CeDirect engine (the transcode shim).
    auto streamed = std::make_shared<core::StreamedModel>(path);
    serve::ModelRegistry reg;
    reg.add("dense",
            serve::makeModelEntry(streamed,
                                  [] { return makeServeCnn(96); },
                                  se_opts, apply_opts));
    reg.add("ce4",
            serve::makeModelEntry(streamed,
                                  [] { return makeServeCnn(96); },
                                  se_opts, apply_opts,
                                  serve::WeightSource::CeDirect));

    serve::ServeOptions opts;
    opts.threads = 2;
    opts.maxBatch = 4;
    serve::ServeFront front(reg, opts);

    const int n = 10;
    std::vector<std::future<Tensor>> fd, fc;
    for (int i = 0; i < n; ++i) {
        fd.push_back(
            front.submit("dense", makeInput(900 + (uint64_t)i)));
        fc.push_back(
            front.submit("ce4", makeInput(900 + (uint64_t)i)));
    }
    front.drain();
    for (int i = 0; i < n; ++i) {
        Tensor ref = reference->forward(
            makeInput(900 + (uint64_t)i), false);
        Tensor yd = fd[(size_t)i].get();
        Tensor yc = fc[(size_t)i].get();
        ASSERT_EQ(yd.size(), ref.size());
        EXPECT_EQ(std::memcmp(yd.data(), ref.data(),
                              (size_t)ref.size() * sizeof(float)),
                  0)
            << "dense request " << i;
        EXPECT_EQ(std::memcmp(yc.data(), ref.data(),
                              (size_t)ref.size() * sizeof(float)),
                  0)
            << "ce4 request " << i;
    }
}

TEST(ServeFrontV4, LazyEagerAndRecordsPathsAnswerIdentically)
{
    // The loader is an access policy, not a value policy: lazy mmap,
    // eager decode-at-open, and the classic loadModelBundleFile ->
    // records path must produce bit-identical responses — and so
    // must every thread/batch configuration (the SE_THREADS
    // invariance, exercised programmatically).
    core::SeOptions se_opts;
    se_opts.vectorThreshold = 0.01;
    core::ApplyOptions apply_opts;
    const std::string path = "/tmp/se_serve_v4_loaders.sexm";
    auto reference = shipV4Model(97, path, se_opts, apply_opts);

    const int n = 8;
    std::vector<uint64_t> digests;
    for (const auto &[threads, batch] :
         std::vector<std::pair<int, size_t>>{
             {0, 1}, {1, 4}, {4, 3}}) {
        for (int mode = 0; mode < 3; ++mode) {
            serve::ModelRegistry reg;
            if (mode == 2) {  // eager records path, no streaming
                reg.add("m", serve::makeModelEntry(
                                 core::loadModelBundleFile(path),
                                 [] { return makeServeCnn(97); },
                                 se_opts, apply_opts));
            } else {
                core::StreamLoaderOptions lo;
                lo.eager = (mode == 1);
                auto sm = std::make_shared<core::StreamedModel>(
                    path, lo);
                reg.add("m", serve::makeModelEntry(
                                 std::move(sm),
                                 [] { return makeServeCnn(97); },
                                 se_opts, apply_opts));
            }
            serve::ServeOptions opts;
            opts.threads = threads;
            opts.maxBatch = batch;
            serve::ServeFront front(reg, opts);
            std::vector<std::future<Tensor>> futs;
            for (int i = 0; i < n; ++i)
                futs.push_back(front.submit(
                    "m", makeInput(1000 + (uint64_t)i)));
            front.drain();
            uint64_t digest = kFnvOffsetBasis;
            for (auto &f : futs)
                digest = hashTensor(f.get(), digest);
            digests.push_back(digest);
        }
    }
    for (size_t i = 1; i < digests.size(); ++i)
        EXPECT_EQ(digests[i], digests[0]) << "config " << i;

    // All equal the quantized compression-time net's own forward.
    uint64_t ref = kFnvOffsetBasis;
    for (int i = 0; i < n; ++i) {
        Tensor y =
            reference->forward(makeInput(1000 + (uint64_t)i), false);
        ref = hashTensor(y.reshaped({y.size()}), ref);
    }
    EXPECT_EQ(digests[0], ref);
}

TEST(ServeFrontV4, UntouchedStreamedModelStaysCold)
{
    // The point of the lazy loader: in a multi-model front, a
    // streamed model nobody submits to never builds its engine and
    // never decodes a piece.
    core::SeOptions se_opts;
    se_opts.vectorThreshold = 0.01;
    core::ApplyOptions apply_opts;
    const std::string hot_path = "/tmp/se_serve_v4_hot.sexm";
    const std::string cold_path = "/tmp/se_serve_v4_cold.sexm";
    auto hot_ref = shipV4Model(98, hot_path, se_opts, apply_opts);
    shipV4Model(99, cold_path, se_opts, apply_opts);

    auto hot = std::make_shared<core::StreamedModel>(hot_path);
    auto cold = std::make_shared<core::StreamedModel>(cold_path);
    serve::ModelRegistry reg;
    reg.add("hot", serve::makeModelEntry(
                       hot, [] { return makeServeCnn(98); },
                       se_opts, apply_opts));
    reg.add("cold", serve::makeModelEntry(
                        cold, [] { return makeServeCnn(99); },
                        se_opts, apply_opts));

    serve::ServeOptions opts;
    opts.threads = 2;
    opts.maxBatch = 4;
    serve::ServeFront front(reg, opts);
    EXPECT_FALSE(front.engineBuilt("hot"));
    EXPECT_FALSE(front.engineBuilt("cold"));
    EXPECT_EQ(hot->decodedPieces(), 0u);
    EXPECT_EQ(cold->decodedPieces(), 0u);
    EXPECT_EQ(front.replicaCount(), 0);  // no engine built yet

    auto fut = front.submit("hot", makeInput(1100));
    front.drain();
    Tensor ref = hot_ref->forward(makeInput(1100), false);
    Tensor got = fut.get();
    EXPECT_EQ(std::memcmp(got.data(), ref.data(),
                          (size_t)ref.size() * sizeof(float)),
              0);

    // The hot model paid its decode; the cold one still has not.
    EXPECT_TRUE(front.engineBuilt("hot"));
    EXPECT_GT(hot->decodedPieces(), 0u);
    EXPECT_FALSE(front.engineBuilt("cold"));
    EXPECT_EQ(cold->decodedPieces(), 0u);
    EXPECT_GT(front.replicaCount(), 0);
    EXPECT_EQ(front.stats("hot").requests, 1u);
    EXPECT_EQ(front.stats("cold").requests, 0u);  // all-zero stats

    // A stopped front refuses to build the cold engine on a late
    // first submit instead of standing up workers post-stop.
    front.stop();
    EXPECT_THROW(front.submit("cold", makeInput(1)),
                 serve::EngineStoppedError);
    EXPECT_FALSE(front.engineBuilt("cold"));
    EXPECT_EQ(cold->decodedPieces(), 0u);
}

// ---------------------------------------------- generations / reload

TEST(ModelRegistryGenerations, ReplaceBumpsTagInPlace)
{
    auto shipped = shipModel(61);
    serve::ModelRegistry reg;
    reg.add("m", serve::ModelEntry{shipped.records,
                                   [] { return makeServeCnn(61); },
                                   shipped.seOpts, shipped.applyOpts,
                                   nullptr});
    reg.add("n", serve::ModelEntry{shipped.records,
                                   [] { return makeServeCnn(61); },
                                   shipped.seOpts, shipped.applyOpts,
                                   nullptr});
    EXPECT_EQ(reg.generationOf("m"), 1u);

    auto next = shipModel(62);
    reg.replace("m", serve::ModelEntry{next.records,
                                       [] { return makeServeCnn(62); },
                                       next.seOpts, next.applyOpts,
                                       nullptr});
    EXPECT_EQ(reg.generationOf("m"), 2u);
    EXPECT_EQ(reg.generationOf("n"), 1u);  // untouched neighbor
    EXPECT_EQ(reg.ids(), (std::vector<std::string>{"m", "n"}));
    EXPECT_EQ(reg.at("m").records.get(), next.records.get());

    EXPECT_THROW(
        reg.replace("absent",
                    serve::ModelEntry{next.records,
                                      [] { return makeServeCnn(62); },
                                      next.seOpts, next.applyOpts,
                                      nullptr}),
        serve::UnknownModelError);
    EXPECT_THROW(reg.replace("m", serve::ModelEntry{}),
                 std::invalid_argument);  // invalid entry, valid id
    EXPECT_THROW(reg.generationOf("absent"),
                 serve::UnknownModelError);
}

TEST(ServeFrontReload, SwapsGenerationsBitIdenticalZeroDrops)
{
    auto gen1 = shipModel(63);
    auto gen2 = shipModel(64);
    serve::ModelRegistry reg;
    reg.add("m", serve::ModelEntry{gen1.records,
                                   [] { return makeServeCnn(63); },
                                   gen1.seOpts, gen1.applyOpts,
                                   nullptr});
    serve::ServeOptions opts;
    opts.threads = 2;
    serve::ServeFront front(reg, opts);
    EXPECT_EQ(front.generation("m"), 1u);
    EXPECT_EQ(front.health("m"), serve::ModelHealth::Healthy);

    Tensor x = makeInput(70);
    auto before = front.submit("m", x);
    front.drain();
    Tensor want1 = gen1.reference->forward(x, false);
    EXPECT_EQ(std::memcmp(before.get().data(), want1.data(),
                          (size_t)want1.size() * sizeof(float)),
              0);

    front.reloadModel(
        "m", serve::ModelEntry{gen2.records,
                               [] { return makeServeCnn(64); },
                               gen2.seOpts, gen2.applyOpts, nullptr});
    EXPECT_EQ(front.generation("m"), 2u);
    EXPECT_EQ(front.health("m"), serve::ModelHealth::Healthy);

    auto after = front.submit("m", x);
    front.drain();
    Tensor want2 = gen2.reference->forward(x, false);
    EXPECT_EQ(std::memcmp(after.get().data(), want2.data(),
                          (size_t)want2.size() * sizeof(float)),
              0);
    // Both generations' traffic shows up in the merged stats.
    EXPECT_EQ(front.stats("m").requests, 2u);
    EXPECT_EQ(front.aggregateStats().requests, 2u);
    front.stop();
}

TEST(ServeFrontReload, ConcurrentSubmitsRideTheSwap)
{
    auto gen1 = shipModel(65);
    auto gen2 = shipModel(66);
    serve::ModelRegistry reg;
    reg.add("m", serve::ModelEntry{gen1.records,
                                   [] { return makeServeCnn(65); },
                                   gen1.seOpts, gen1.applyOpts,
                                   nullptr});
    serve::ServeOptions opts;
    opts.threads = 2;
    serve::ServeFront front(reg, opts);

    Tensor x = makeInput(71);
    Tensor want1 = gen1.reference->forward(x, false);
    Tensor want2 = gen2.reference->forward(x, false);

    std::atomic<bool> done{false};
    std::atomic<int> answered{0}, dropped{0}, mismatched{0};
    std::thread traffic([&] {
        while (!done.load()) {
            try {
                Tensor y = front.submit("m", x).get();
                const bool is1 =
                    std::memcmp(y.data(), want1.data(),
                                (size_t)want1.size() *
                                    sizeof(float)) == 0;
                const bool is2 =
                    std::memcmp(y.data(), want2.data(),
                                (size_t)want2.size() *
                                    sizeof(float)) == 0;
                if (!is1 && !is2)
                    ++mismatched;
                ++answered;
            } catch (const serve::EngineStoppedError &) {
                // submit() retries across a swap internally; an
                // escape here is a dropped request.
                ++dropped;
            }
        }
    });
    for (int flip = 0; flip < 10; ++flip) {
        const auto &g = (flip % 2 == 0) ? gen2 : gen1;
        const uint64_t seed = (flip % 2 == 0) ? 66u : 65u;
        front.reloadModel(
            "m", serve::ModelEntry{g.records,
                                   [seed] {
                                       return makeServeCnn(seed);
                                   },
                                   g.seOpts, g.applyOpts, nullptr});
    }
    done = true;
    traffic.join();
    // Settle the live engine's stats: a future resolves before its
    // batch's counters land, so count only after a drain barrier.
    front.drain();
    EXPECT_EQ(dropped.load(), 0);
    EXPECT_EQ(mismatched.load(), 0);
    EXPECT_GT(answered.load(), 0);
    EXPECT_EQ(front.generation("m"), 11u);
    EXPECT_EQ((uint64_t)answered.load(),
              front.stats("m").requests);
    front.stop();
}

TEST(ServeFrontV4, SubmitVsStopRaceOnColdEntryNoDoubleBuild)
{
    // Regression (the old build-under-lock path): a first submit to a
    // cold streamed entry held the front-wide lock for the whole
    // piece-decode + engine build, so a concurrent stop() (or second
    // submit) stacked up behind it — and a badly timed pair could
    // build twice. The build now runs outside the lock under a
    // per-slot building flag.
    core::SeOptions se_opts;
    se_opts.vectorThreshold = 0.01;
    core::ApplyOptions apply_opts;
    const std::string path = "/tmp/se_serve_v4_stoprace.sexm";
    shipV4Model(100, path, se_opts, apply_opts);

    for (int round = 0; round < 8; ++round) {
        auto streamed = std::make_shared<core::StreamedModel>(path);
        std::atomic<int> factoryCalls{0};
        serve::ModelRegistry reg;
        reg.add("cold",
                serve::makeModelEntry(streamed,
                                      [&factoryCalls] {
                                          ++factoryCalls;
                                          return makeServeCnn(100);
                                      },
                                      se_opts, apply_opts));
        serve::ServeOptions opts;
        opts.threads = 0;  // one replica: any rebuild is visible
        serve::ServeFront front(reg, opts);

        std::atomic<int> refused{0}, served{0};
        std::vector<std::thread> submitters;
        for (int t = 0; t < 3; ++t)
            submitters.emplace_back([&] {
                try {
                    Tensor y =
                        front.submit("cold", makeInput(1200)).get();
                    (void)y;
                    ++served;
                } catch (const serve::EngineStoppedError &) {
                    ++refused;
                }
            });
        std::thread stopper([&] { front.stop(); });
        for (auto &t : submitters)
            t.join();
        stopper.join();  // joining at all proves no deadlock

        // At most one engine build (one replica) ever happened, even
        // with three racing first touches; every submit either got
        // an answer or a clean refusal.
        EXPECT_LE(factoryCalls.load(), 1) << "round " << round;
        EXPECT_EQ(served.load() + refused.load(), 3)
            << "round " << round;
    }
}

// --------------------------------------- pipelined execution wall

TEST(InferenceSession, PipelinedRebuildBitIdenticalAndCounted)
{
    // The rebuild lane re-materializes layer k+1 while layer k's
    // forward runs; outputs and rebuild counters must match the
    // serial path exactly, for Dense and CeDirect alike.
    auto shipped = shipModel(141);
    for (const auto src :
         {serve::WeightSource::Dense, serve::WeightSource::CeDirect}) {
        serve::SessionOptions serial_opts;
        serial_opts.rebuildPerCall = true;
        serial_opts.cacheRebuiltWeights = false;
        serial_opts.weightSource = src;
        serve::SessionOptions pipe_opts = serial_opts;
        pipe_opts.pipelineRebuild = true;

        serve::InferenceSession serial(makeServeCnn(141),
                                       shipped.records,
                                       shipped.seOpts,
                                       shipped.applyOpts, serial_opts);
        serve::InferenceSession piped(makeServeCnn(141),
                                      shipped.records, shipped.seOpts,
                                      shipped.applyOpts, pipe_opts);
        for (int i = 0; i < 4; ++i) {
            Tensor x = makeInput(1400 + (uint64_t)i, 3);
            Tensor a = serial.forward(x);
            Tensor b = piped.forward(x);
            ASSERT_EQ(a.shape(), b.shape());
            EXPECT_EQ(std::memcmp(a.data(), b.data(),
                                  (size_t)a.size() * sizeof(float)),
                      0)
                << "call " << i;
        }
        EXPECT_EQ(piped.stats().coldRebuilds,
                  serial.stats().coldRebuilds);
        EXPECT_EQ(piped.stats().warmRebuilds,
                  serial.stats().warmRebuilds);
        EXPECT_EQ(piped.stats().forwardCalls, 4u);
        // At least the non-entry layers rebuilt concurrently with
        // compute, and forward never stalled longer than the total
        // rebuild work.
        EXPECT_GT(piped.stats().overlappedRebuilds, 0u);
        EXPECT_GE(piped.stats().decodeStallMs, 0.0);
        // Serial stall IS the inline rebuild time.
        EXPECT_DOUBLE_EQ(serial.stats().decodeStallMs,
                         serial.stats().rebuildMs);
    }
}

TEST(ServePipeline, BitIdentityWallAcrossModesThreadsAndPolicies)
{
    // SE_PIPELINE's engine-level contract: the stage-decoupled loop
    // answers every request bit-identically to the serial loop across
    // thread counts, flush policies, rebuild policies and weight
    // sources.
    auto shipped = shipModel(142);
    const int n = 19;

    uint64_t refDigest = kFnvOffsetBasis;
    for (int i = 0; i < n; ++i) {
        Tensor y = shipped.reference->forward(
            makeInput(1500 + (uint64_t)i), false);
        refDigest = hashTensor(y.reshaped({y.size()}), refDigest);
    }

    struct Config
    {
        bool pipeline;
        int threads;
        size_t maxBatch;
        serve::FlushPolicy flush;
        bool perCall;
        serve::WeightSource src;
    };
    const Config configs[] = {
        {false, 0, 4, serve::FlushPolicy::Greedy, true,
         serve::WeightSource::Dense},
        {true, 0, 4, serve::FlushPolicy::Greedy, true,
         serve::WeightSource::Dense},
        {true, 1, 4, serve::FlushPolicy::Greedy, true,
         serve::WeightSource::CeDirect},
        {false, 3, 5, serve::FlushPolicy::Greedy, true,
         serve::WeightSource::CeDirect},
        {true, 3, 5, serve::FlushPolicy::Greedy, true,
         serve::WeightSource::CeDirect},
        {true, 2, 8, serve::FlushPolicy::Full, false,
         serve::WeightSource::Dense},
        {true, 2, 6, serve::FlushPolicy::Deadline, true,
         serve::WeightSource::CeDirect},
        {true, 4, 3, serve::FlushPolicy::Greedy, false,
         serve::WeightSource::CeDirect},
    };
    size_t idx = 0;
    for (const Config &cfg : configs) {
        serve::ServeOptions opts;
        opts.pipeline = cfg.pipeline;
        opts.threads = cfg.threads;
        opts.maxBatch = cfg.maxBatch;
        opts.flush = cfg.flush;
        opts.session.rebuildPerCall = cfg.perCall;
        opts.session.weightSource = cfg.src;
        opts.session.pipelineRebuild = cfg.pipeline;
        serve::ServeEngine engine(
            shipped.records, [] { return makeServeCnn(142); },
            shipped.seOpts, shipped.applyOpts, opts);

        std::vector<std::future<Tensor>> futs;
        for (int i = 0; i < n; ++i)
            futs.push_back(
                engine.submit(makeInput(1500 + (uint64_t)i)));
        engine.drain();

        uint64_t digest = kFnvOffsetBasis;
        for (auto &f : futs)
            digest = hashTensor(f.get(), digest);
        EXPECT_EQ(digest, refDigest)
            << "config " << idx << " diverged from the serial "
            << "reference";

        auto st = engine.stats();
        EXPECT_EQ(st.requests, (uint64_t)n) << "config " << idx;
        EXPECT_EQ(st.failed, 0u) << "config " << idx;
        EXPECT_GE(st.pipelineOccupancy, 0.0);
        EXPECT_LE(st.pipelineOccupancy, 1.0);
        if (!cfg.pipeline)
            EXPECT_EQ(st.overlappedBatches, 0u) << "config " << idx;
        ++idx;
    }
}

TEST(ServePipeline, StopAndDrainSemanticsSurviveStages)
{
    // stop() answers everything accepted then refuses; drain()
    // flushes a Full-policy hold; both with the completer thread in
    // the publish path.
    auto shipped = shipModel(143);
    serve::ServeOptions opts;
    opts.pipeline = true;
    opts.threads = 2;
    opts.maxBatch = 8;
    opts.flush = serve::FlushPolicy::Full;
    serve::ServeEngine engine(
        shipped.records, [] { return makeServeCnn(143); },
        shipped.seOpts, shipped.applyOpts, opts);

    std::vector<std::future<Tensor>> futs;
    for (int i = 0; i < 5; ++i)  // partial batch under Full
        futs.push_back(engine.submit(makeInput(1600 + (uint64_t)i)));
    engine.drain();  // must flush the hold
    for (auto &f : futs)
        EXPECT_NO_THROW(f.get());
    EXPECT_EQ(engine.stats().requests, 5u);

    for (int i = 0; i < 3; ++i)
        futs.push_back(engine.submit(makeInput(1700 + (uint64_t)i)));
    engine.stop();
    for (size_t i = 5; i < futs.size(); ++i)
        EXPECT_NO_THROW(futs[i].get());
    EXPECT_EQ(engine.stats().requests, 8u);
    EXPECT_THROW(engine.submit(makeInput(1800)),
                 serve::EngineStoppedError);
}

TEST(ServePipelineV4, StreamedPrefetchedCeDirectBitIdentical)
{
    // End-to-end pipelined streaming: v4 bundle opened with a
    // prefetch lane, records bound CeDirect, engine pipelined — the
    // full ROADMAP item 2 path — versus the serial everything-off
    // path. Identical responses, and the lane's counters add up.
    core::SeOptions se_opts;
    se_opts.vectorThreshold = 0.01;
    core::ApplyOptions apply_opts;
    const std::string path = "/tmp/se_serve_pipe_v4.sexm";
    auto reference = shipV4Model(144, path, se_opts, apply_opts);
    const int n = 12;

    std::vector<uint64_t> digests;
    for (const bool pipelined : {false, true}) {
        core::StreamLoaderOptions lo;
        lo.prefetchDepth = pipelined ? 3 : 0;
        core::StreamedModel sm(path, lo);
        serve::ServeOptions opts;
        opts.pipeline = pipelined;
        opts.threads = 2;
        opts.maxBatch = 4;
        opts.session.rebuildPerCall = true;
        opts.session.cacheRebuiltWeights = false;
        opts.session.weightSource = serve::WeightSource::CeDirect;
        opts.session.pipelineRebuild = pipelined;
        opts.session.denseState = std::make_shared<
            const std::vector<core::DenseTensor>>(sm.dense());
        serve::ServeEngine engine(
            sm.records(), [] { return makeServeCnn(144); },
            se_opts, apply_opts, opts);

        std::vector<std::future<Tensor>> futs;
        for (int i = 0; i < n; ++i)
            futs.push_back(
                engine.submit(makeInput(1900 + (uint64_t)i)));
        engine.drain();
        uint64_t digest = kFnvOffsetBasis;
        for (auto &f : futs)
            digest = hashTensor(f.get(), digest);
        digests.push_back(digest);
        engine.stop();

        sm.drainPrefetch();
        const auto ss = sm.streamStats();
        // Every piece was touched exactly once by records(): each
        // touch was a lane hit or an inline miss, never both.
        EXPECT_EQ(ss.prefetchHits + ss.prefetchMisses,
                  (uint64_t)sm.pieceCount());
        EXPECT_EQ(sm.decodedPieces(), sm.pieceCount());
        EXPECT_EQ(ss.prefetchErrors, 0u);
        if (!pipelined) {
            EXPECT_EQ(ss.prefetchHits, 0u);
            EXPECT_EQ(ss.prefetchScheduled, 0u);
        }

        const auto st = engine.stats();
        EXPECT_EQ(st.requests, (uint64_t)n);
        EXPECT_GE(st.decodeStallMs, 0.0);
    }
    ASSERT_EQ(digests.size(), 2u);
    EXPECT_EQ(digests[0], digests[1])
        << "SE_PIPELINE on/off must not change responses";

    // And both match the uncompressed reference.
    uint64_t refDigest = kFnvOffsetBasis;
    for (int i = 0; i < n; ++i) {
        Tensor y =
            reference->forward(makeInput(1900 + (uint64_t)i), false);
        refDigest = hashTensor(y.reshaped({y.size()}), refDigest);
    }
    EXPECT_EQ(digests[0], refDigest);
}

} // namespace
} // namespace se
