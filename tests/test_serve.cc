/**
 * @file
 * Tests of the se::serve layer: InferenceSession weight rebuild
 * policies and fidelity against the eager install path, ServeEngine
 * batching/fan-out correctness, and the determinism wall — responses
 * must be bit-identical across thread counts, batch sizes and flush
 * policies.
 */

#include <gtest/gtest.h>

#include <cstring>
#include <future>

#include "base/hash.hh"
#include "base/random.hh"
#include "nn/blocks.hh"
#include "serve/engine.hh"
#include "serve/session.hh"

namespace se {
namespace {

constexpr int64_t kInC = 3, kInH = 6, kInW = 6, kClasses = 10;

/** A compact CNN with all three reshape rules and a real forward. */
std::unique_ptr<nn::Sequential>
makeServeCnn(uint64_t seed)
{
    Rng rng(seed);
    auto net = std::make_unique<nn::Sequential>();
    net->add<nn::Conv2d>(kInC, 8, 3, 1, 1, 1, rng, false);
    net->add<nn::BatchNorm2d>(8);
    net->add<nn::ReLU>();
    net->add<nn::Conv2d>(8, 16, 1, 1, 0, 1, rng, false);
    net->add<nn::ReLU>();
    net->add<nn::GlobalAvgPool>();
    net->add<nn::Flatten>();
    net->add<nn::Linear>(16, kClasses, rng, false);
    return net;
}

struct ShippedModel
{
    std::shared_ptr<const std::vector<core::SeLayerRecord>> records;
    std::unique_ptr<nn::Sequential> reference;  ///< eager-installed
    core::SeOptions seOpts;
    core::ApplyOptions applyOpts;
};

ShippedModel
shipModel(uint64_t seed = 51)
{
    ShippedModel s;
    s.seOpts.vectorThreshold = 0.01;
    s.reference = makeServeCnn(seed);
    auto compressed =
        core::compressToRecords(*s.reference, s.seOpts, s.applyOpts);
    s.records = std::make_shared<std::vector<core::SeLayerRecord>>(
        std::move(compressed.records));
    return s;
}

Tensor
makeInput(uint64_t seed, int64_t n = 1)
{
    Rng rng(seed);
    return randn({n, kInC, kInH, kInW}, rng, 0.0f, 1.0f);
}

// ------------------------------------------------- InferenceSession

TEST(InferenceSession, MatchesEagerInstallBitForBit)
{
    auto shipped = shipModel(51);
    serve::InferenceSession session(makeServeCnn(51), shipped.records,
                                    shipped.seOpts,
                                    shipped.applyOpts);
    EXPECT_EQ(session.rebuildableLayers(), shipped.records->size());

    Tensor x = makeInput(1, 4);
    Tensor ref = shipped.reference->forward(x, false);
    Tensor got = session.forward(x);
    ASSERT_EQ(got.shape(), ref.shape());
    EXPECT_EQ(std::memcmp(got.data(), ref.data(),
                          (size_t)got.size() * sizeof(float)),
              0);
}

TEST(InferenceSession, CachedModeRebuildsEachLayerOnce)
{
    auto shipped = shipModel(52);
    serve::InferenceSession session(makeServeCnn(52), shipped.records,
                                    shipped.seOpts,
                                    shipped.applyOpts);
    const auto layers = (uint64_t)session.rebuildableLayers();
    Tensor x = makeInput(2);
    session.forward(x);
    session.forward(x);
    session.forward(x);
    EXPECT_EQ(session.stats().coldRebuilds, layers);
    EXPECT_EQ(session.stats().warmRebuilds, 0u);
    EXPECT_EQ(session.stats().forwardCalls, 3u);
}

TEST(InferenceSession, PerCallModeRebuildsEveryForward)
{
    auto shipped = shipModel(53);
    serve::SessionOptions warm_opts;
    warm_opts.rebuildPerCall = true;
    warm_opts.cacheRebuiltWeights = true;
    serve::InferenceSession warm(makeServeCnn(53), shipped.records,
                                 shipped.seOpts, shipped.applyOpts,
                                 warm_opts);
    const auto layers = (uint64_t)warm.rebuildableLayers();
    Tensor x = makeInput(3);
    Tensor y1 = warm.forward(x);
    Tensor y2 = warm.forward(x);
    // First call cold, second restored from the per-layer cache.
    EXPECT_EQ(warm.stats().coldRebuilds, layers);
    EXPECT_EQ(warm.stats().warmRebuilds, layers);
    EXPECT_EQ(std::memcmp(y1.data(), y2.data(),
                          (size_t)y1.size() * sizeof(float)),
              0);

    serve::SessionOptions cold_opts;
    cold_opts.rebuildPerCall = true;
    cold_opts.cacheRebuiltWeights = false;
    serve::InferenceSession cold(makeServeCnn(53), shipped.records,
                                 shipped.seOpts, shipped.applyOpts,
                                 cold_opts);
    cold.forward(x);
    cold.forward(x);
    EXPECT_EQ(cold.stats().coldRebuilds, 2 * layers);
    EXPECT_EQ(cold.stats().warmRebuilds, 0u);
}

TEST(InferenceSession, InvalidateThenWarmRebuild)
{
    auto shipped = shipModel(54);
    serve::InferenceSession session(makeServeCnn(54), shipped.records,
                                    shipped.seOpts,
                                    shipped.applyOpts);
    const auto layers = (uint64_t)session.rebuildableLayers();
    Tensor x = makeInput(4);
    Tensor y1 = session.forward(x);
    session.invalidateWeights();
    Tensor y2 = session.forward(x);
    EXPECT_EQ(session.stats().coldRebuilds, layers);
    EXPECT_EQ(session.stats().warmRebuilds, layers);
    EXPECT_EQ(std::memcmp(y1.data(), y2.data(),
                          (size_t)y1.size() * sizeof(float)),
              0);

    session.clearRebuildCache();
    Tensor y3 = session.forward(x);
    EXPECT_EQ(session.stats().coldRebuilds, 2 * layers);
    EXPECT_EQ(std::memcmp(y1.data(), y3.data(),
                          (size_t)y1.size() * sizeof(float)),
              0);
}

TEST(InferenceSession, RejectsMismatchedArchitecture)
{
    auto shipped = shipModel(55);
    Rng rng(56);
    auto wrong = std::make_unique<nn::Sequential>();
    wrong->add<nn::Conv2d>(kInC, 4, 3, 1, 1, 1, rng, false);
    wrong->add<nn::Linear>(16, kClasses, rng, false);
    EXPECT_THROW(serve::InferenceSession(std::move(wrong),
                                         shipped.records,
                                         shipped.seOpts,
                                         shipped.applyOpts),
                 core::ModelFileError);
}

// ------------------------------------------------------ ServeEngine

TEST(ServeEngine, AnswersMatchDirectSessionForward)
{
    auto shipped = shipModel(61);
    serve::ServeOptions opts;
    opts.threads = 2;
    opts.maxBatch = 4;
    serve::ServeEngine engine(
        shipped.records, [] { return makeServeCnn(61); },
        shipped.seOpts, shipped.applyOpts, opts);
    EXPECT_EQ(engine.replicaCount(), 2);

    const int n = 17;
    std::vector<std::future<Tensor>> futs;
    for (int i = 0; i < n; ++i)
        futs.push_back(engine.submit(
            makeInput(100 + (uint64_t)i).reshaped(
                {kInC, kInH, kInW})));
    engine.drain();

    for (int i = 0; i < n; ++i) {
        Tensor got = futs[(size_t)i].get();
        Tensor ref = shipped.reference->forward(
            makeInput(100 + (uint64_t)i), false);
        ASSERT_EQ(got.size(), ref.size());
        EXPECT_EQ(std::memcmp(got.data(), ref.data(),
                              (size_t)got.size() * sizeof(float)),
                  0)
            << "request " << i;
    }

    auto st = engine.stats();
    EXPECT_EQ(st.requests, (uint64_t)n);
    EXPECT_GE(st.batches, 1u);
    EXPECT_LE(st.p50Ms, st.p95Ms);
    EXPECT_LE(st.p95Ms, st.p99Ms);
    EXPECT_LE(st.p99Ms, st.maxMs);
}

TEST(ServeEngine, DeterministicAcrossThreadsBatchingAndPolicies)
{
    auto shipped = shipModel(62);
    const int n = 23;

    struct Config
    {
        int threads;
        size_t maxBatch;
        serve::FlushPolicy flush;
        bool rebuildPerCall;
    };
    const Config configs[] = {
        {0, 1, serve::FlushPolicy::Greedy, false},
        {1, 4, serve::FlushPolicy::Greedy, false},
        {8, 3, serve::FlushPolicy::Greedy, false},
        {8, 8, serve::FlushPolicy::Full, false},
        {2, 5, serve::FlushPolicy::Greedy, true},
    };

    std::vector<uint64_t> digests;
    for (const Config &cfg : configs) {
        serve::ServeOptions opts;
        opts.threads = cfg.threads;
        opts.maxBatch = cfg.maxBatch;
        opts.flush = cfg.flush;
        opts.session.rebuildPerCall = cfg.rebuildPerCall;
        serve::ServeEngine engine(
            shipped.records, [] { return makeServeCnn(62); },
            shipped.seOpts, shipped.applyOpts, opts);

        std::vector<std::future<Tensor>> futs;
        for (int i = 0; i < n; ++i)
            futs.push_back(
                engine.submit(makeInput(200 + (uint64_t)i)));
        engine.drain();

        uint64_t digest = kFnvOffsetBasis;
        for (auto &f : futs)
            digest = hashTensor(f.get(), digest);
        digests.push_back(digest);
    }
    for (size_t i = 1; i < digests.size(); ++i)
        EXPECT_EQ(digests[i], digests[0])
            << "config " << i << " produced different responses";
}

TEST(ServeEngine, FullFlushPolicyWaitsForFullBatches)
{
    auto shipped = shipModel(63);
    serve::ServeOptions opts;
    opts.threads = 1;
    opts.maxBatch = 4;
    opts.flush = serve::FlushPolicy::Full;
    serve::ServeEngine engine(
        shipped.records, [] { return makeServeCnn(63); },
        shipped.seOpts, shipped.applyOpts, opts);

    // 4 requests = exactly one full batch; drain flushes nothing.
    std::vector<std::future<Tensor>> futs;
    for (int i = 0; i < 4; ++i)
        futs.push_back(engine.submit(makeInput((uint64_t)i)));
    engine.drain();
    EXPECT_EQ(engine.stats().batches, 1u);
    EXPECT_DOUBLE_EQ(engine.stats().meanBatchSize, 4.0);

    // 3 more sit below the threshold until drain flushes them.
    for (int i = 0; i < 3; ++i)
        futs.push_back(engine.submit(makeInput((uint64_t)i)));
    engine.drain();
    EXPECT_EQ(engine.stats().requests, 7u);
    for (auto &f : futs)
        EXPECT_NO_THROW(f.get());
}

TEST(ServeEngine, MixedShapesInOneBatchFailTheBatch)
{
    auto shipped = shipModel(64);
    serve::ServeOptions opts;
    opts.threads = 0;  // inline: both requests land in one batch
    opts.maxBatch = 8;
    opts.flush = serve::FlushPolicy::Full;
    serve::ServeEngine engine(
        shipped.records, [] { return makeServeCnn(64); },
        shipped.seOpts, shipped.applyOpts, opts);

    auto good = engine.submit(makeInput(1));
    Rng rng(2);
    auto bad = engine.submit(randn({kInC, kInH + 1, kInW}, rng));
    engine.drain();
    EXPECT_THROW(bad.get(), std::invalid_argument);
    EXPECT_THROW(good.get(), std::invalid_argument);
    EXPECT_EQ(engine.stats().failed, 2u);
    EXPECT_EQ(engine.stats().requests, 0u);
}

TEST(ServeEngine, HeavyTrafficManyWaiters)
{
    auto shipped = shipModel(65);
    serve::ServeOptions opts;
    opts.threads = 4;
    opts.maxBatch = 6;
    serve::ServeEngine engine(
        shipped.records, [] { return makeServeCnn(65); },
        shipped.seOpts, shipped.applyOpts, opts);

    const int n = 200;
    std::vector<std::future<Tensor>> futs;
    futs.reserve((size_t)n);
    for (int i = 0; i < n; ++i)
        futs.push_back(engine.submit(makeInput((uint64_t)(i % 5))));
    engine.drain();
    for (int i = 0; i < n; ++i) {
        Tensor r = futs[(size_t)i].get();
        EXPECT_EQ(r.size(), kClasses);
    }
    auto st = engine.stats();
    EXPECT_EQ(st.requests, (uint64_t)n);
    EXPECT_GE(st.meanBatchSize, 1.0);
}

} // namespace
} // namespace se
