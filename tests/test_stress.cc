/**
 * @file
 * Stress tests of the concurrency substrate: ThreadPool exception
 * propagation and many-waiter contention, destruction with a full
 * queue, and DecompCache behaviour under concurrent identical keys
 * and concurrent eviction pressure.
 */

#include <gtest/gtest.h>

#include <atomic>
#include <cstring>
#include <thread>
#include <vector>

#include "base/random.hh"
#include "base/thread_pool.hh"
#include "runtime/decomp_cache.hh"

namespace se {
namespace {

// ------------------------------------------------------- ThreadPool

TEST(ThreadPoolStress, EverySubmittedFutureCarriesItsException)
{
    ThreadPool pool(4);
    const int n = 64;
    std::vector<std::future<int>> futs;
    futs.reserve((size_t)n);
    for (int i = 0; i < n; ++i)
        futs.push_back(pool.submit([i]() -> int {
            if (i % 3 == 0)
                throw std::runtime_error("task " + std::to_string(i));
            return i;
        }));
    for (int i = 0; i < n; ++i) {
        if (i % 3 == 0) {
            try {
                futs[(size_t)i].get();
                FAIL() << "task " << i << " should have thrown";
            } catch (const std::runtime_error &e) {
                EXPECT_EQ(std::string(e.what()),
                          "task " + std::to_string(i));
            }
        } else {
            EXPECT_EQ(futs[(size_t)i].get(), i);
        }
    }
}

TEST(ThreadPoolStress, ParallelForRethrowsUnderContention)
{
    ThreadPool pool(8);
    std::atomic<int> executed{0};
    for (int round = 0; round < 20; ++round) {
        EXPECT_THROW(pool.parallelFor(500,
                                      [&](int64_t i) {
                                          executed++;
                                          if (i == 250)
                                              throw std::logic_error(
                                                  "boom");
                                      }),
                     std::logic_error);
    }
    EXPECT_GT(executed.load(), 0);
}

TEST(ThreadPoolStress, ParallelForSurvivesAfterAnException)
{
    // The pool must stay fully usable after a failed run.
    ThreadPool pool(4);
    EXPECT_THROW(
        pool.parallelFor(
            64, [](int64_t) { throw std::runtime_error("first"); }),
        std::runtime_error);

    std::vector<std::atomic<int>> hits(512);
    pool.parallelFor(512, [&](int64_t i) { hits[(size_t)i]++; });
    for (size_t i = 0; i < hits.size(); ++i)
        ASSERT_EQ(hits[i].load(), 1) << "index " << i;
}

TEST(ThreadPoolStress, ManyWaitersManySubmitters)
{
    // 8 external threads hammer one pool with small tasks and wait on
    // every future; totals must come out exact.
    ThreadPool pool(4);
    std::atomic<int64_t> total{0};
    constexpr int submitters = 8, per_thread = 200;
    std::vector<std::thread> threads;
    threads.reserve(submitters);
    for (int t = 0; t < submitters; ++t) {
        threads.emplace_back([&, t] {
            std::vector<std::future<int>> futs;
            futs.reserve(per_thread);
            for (int i = 0; i < per_thread; ++i) {
                const int value = t * per_thread + i;
                futs.push_back(
                    pool.submit([value] { return value; }));
            }
            int64_t local = 0;
            for (auto &f : futs)
                local += f.get();
            total += local;
        });
    }
    for (auto &th : threads)
        th.join();
    const int64_t n = (int64_t)submitters * per_thread;
    EXPECT_EQ(total.load(), n * (n - 1) / 2);
}

TEST(ThreadPoolStress, DestructionDrainsTheQueue)
{
    // Queued-but-not-started tasks still run before the pool dies.
    std::atomic<int> ran{0};
    {
        ThreadPool pool(2);
        for (int i = 0; i < 300; ++i)
            pool.submit([&ran] { ran++; });
    }
    EXPECT_EQ(ran.load(), 300);
}

// ------------------------------------------------------ DecompCache

Tensor
smallMatrix(uint64_t seed)
{
    Rng rng(seed);
    return randn({12, 4}, rng, 0.0f, 0.1f);
}

TEST(DecompCacheStress, ConcurrentIdenticalKeysStayConsistent)
{
    // Many threads ask for the same decomposition at once: every
    // answer must be bit-identical, the cache must hold exactly one
    // entry, and hits + misses must equal the number of calls.
    Tensor w = smallMatrix(31);
    core::SeOptions opts;
    opts.vectorThreshold = 0.01;
    const core::SeMatrix ref = core::decomposeMatrix(w, opts);

    runtime::DecompCache cache(16);
    const int threads = 8, per_thread = 25;
    std::atomic<int> mismatches{0};
    std::vector<std::thread> workers;
    workers.reserve(threads);
    for (int t = 0; t < threads; ++t) {
        workers.emplace_back([&] {
            for (int i = 0; i < per_thread; ++i) {
                core::SeMatrix got = cache.getOrCompute(w, opts);
                if (got.ce.size() != ref.ce.size() ||
                    std::memcmp(got.ce.data(), ref.ce.data(),
                                (size_t)ref.ce.size() *
                                    sizeof(float)) != 0 ||
                    std::memcmp(got.basis.data(), ref.basis.data(),
                                (size_t)ref.basis.size() *
                                    sizeof(float)) != 0)
                    mismatches++;
            }
        });
    }
    for (auto &th : workers)
        th.join();

    EXPECT_EQ(mismatches.load(), 0);
    EXPECT_EQ(cache.size(), 1u);
    EXPECT_EQ(cache.hits() + cache.misses(),
              (uint64_t)(threads * per_thread));
    EXPECT_GE(cache.hits(), (uint64_t)(threads * per_thread - threads));
}

TEST(DecompCacheStress, ConcurrentEvictionPressureStaysBounded)
{
    // More live keys than capacity, hammered from several threads:
    // the cache must stay within capacity, never mis-answer, and keep
    // coherent counters.
    const size_t capacity = 3;
    runtime::DecompCache cache(capacity);
    core::SeOptions opts;
    opts.vectorThreshold = 0.01;

    const int distinct = 8;
    std::vector<Tensor> keys;
    std::vector<core::SeMatrix> refs;
    for (int k = 0; k < distinct; ++k) {
        keys.push_back(smallMatrix(100 + (uint64_t)k));
        refs.push_back(core::decomposeMatrix(keys.back(), opts));
    }

    const int threads = 6, per_thread = 30;
    std::atomic<int> mismatches{0};
    std::vector<std::thread> workers;
    workers.reserve(threads);
    for (int t = 0; t < threads; ++t) {
        workers.emplace_back([&, t] {
            Rng rng((uint64_t)t);
            for (int i = 0; i < per_thread; ++i) {
                const int k = (int)rng.integer(0, distinct - 1);
                core::SeMatrix got =
                    cache.getOrCompute(keys[(size_t)k], opts);
                if (std::memcmp(got.ce.data(),
                                refs[(size_t)k].ce.data(),
                                (size_t)got.ce.size() *
                                    sizeof(float)) != 0)
                    mismatches++;
            }
        });
    }
    for (auto &th : workers)
        th.join();

    EXPECT_EQ(mismatches.load(), 0);
    EXPECT_LE(cache.size(), capacity);
    EXPECT_EQ(cache.hits() + cache.misses(),
              (uint64_t)(threads * per_thread));

    cache.clear();
    EXPECT_EQ(cache.size(), 0u);
}

} // namespace
} // namespace se
