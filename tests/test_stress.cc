/**
 * @file
 * Stress tests of the concurrency substrate: ThreadPool exception
 * propagation and many-waiter contention, destruction with a full
 * queue, DecompCache behaviour under concurrent identical keys and
 * concurrent eviction pressure, and ServeEngine under hostile
 * concurrency (stop-vs-submit races, queueCap saturation,
 * drain-vs-submit interleaving) — every request must complete or be
 * shed, never hang, never kill the process.
 */

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstring>
#include <filesystem>
#include <future>
#include <thread>
#include <vector>

#include "base/failpoint.hh"
#include "base/random.hh"
#include "base/thread_pool.hh"
#include "nn/blocks.hh"
#include "runtime/decomp_cache.hh"
#include "serve/engine.hh"
#include "serve/front.hh"

namespace se {
namespace {

// ------------------------------------------------------- ThreadPool

TEST(ThreadPoolStress, EverySubmittedFutureCarriesItsException)
{
    ThreadPool pool(4);
    const int n = 64;
    std::vector<std::future<int>> futs;
    futs.reserve((size_t)n);
    for (int i = 0; i < n; ++i)
        futs.push_back(pool.submit([i]() -> int {
            if (i % 3 == 0)
                throw std::runtime_error("task " + std::to_string(i));
            return i;
        }));
    for (int i = 0; i < n; ++i) {
        if (i % 3 == 0) {
            try {
                futs[(size_t)i].get();
                FAIL() << "task " << i << " should have thrown";
            } catch (const std::runtime_error &e) {
                EXPECT_EQ(std::string(e.what()),
                          "task " + std::to_string(i));
            }
        } else {
            EXPECT_EQ(futs[(size_t)i].get(), i);
        }
    }
}

TEST(ThreadPoolStress, ParallelForRethrowsUnderContention)
{
    ThreadPool pool(8);
    std::atomic<int> executed{0};
    for (int round = 0; round < 20; ++round) {
        EXPECT_THROW(pool.parallelFor(500,
                                      [&](int64_t i) {
                                          executed++;
                                          if (i == 250)
                                              throw std::logic_error(
                                                  "boom");
                                      }),
                     std::logic_error);
    }
    EXPECT_GT(executed.load(), 0);
}

TEST(ThreadPoolStress, ParallelForSurvivesAfterAnException)
{
    // The pool must stay fully usable after a failed run.
    ThreadPool pool(4);
    EXPECT_THROW(
        pool.parallelFor(
            64, [](int64_t) { throw std::runtime_error("first"); }),
        std::runtime_error);

    std::vector<std::atomic<int>> hits(512);
    pool.parallelFor(512, [&](int64_t i) { hits[(size_t)i]++; });
    for (size_t i = 0; i < hits.size(); ++i)
        ASSERT_EQ(hits[i].load(), 1) << "index " << i;
}

TEST(ThreadPoolStress, ManyWaitersManySubmitters)
{
    // 8 external threads hammer one pool with small tasks and wait on
    // every future; totals must come out exact.
    ThreadPool pool(4);
    std::atomic<int64_t> total{0};
    constexpr int submitters = 8, per_thread = 200;
    std::vector<std::thread> threads;
    threads.reserve(submitters);
    for (int t = 0; t < submitters; ++t) {
        threads.emplace_back([&, t] {
            std::vector<std::future<int>> futs;
            futs.reserve(per_thread);
            for (int i = 0; i < per_thread; ++i) {
                const int value = t * per_thread + i;
                futs.push_back(
                    pool.submit([value] { return value; }));
            }
            int64_t local = 0;
            for (auto &f : futs)
                local += f.get();
            total += local;
        });
    }
    for (auto &th : threads)
        th.join();
    const int64_t n = (int64_t)submitters * per_thread;
    EXPECT_EQ(total.load(), n * (n - 1) / 2);
}

TEST(ThreadPoolStress, DestructionDrainsTheQueue)
{
    // Queued-but-not-started tasks still run before the pool dies.
    std::atomic<int> ran{0};
    {
        ThreadPool pool(2);
        for (int i = 0; i < 300; ++i)
            pool.submit([&ran] { ran++; });
    }
    EXPECT_EQ(ran.load(), 300);
}

// ------------------------------------------------------ DecompCache

Tensor
smallMatrix(uint64_t seed)
{
    Rng rng(seed);
    return randn({12, 4}, rng, 0.0f, 0.1f);
}

TEST(DecompCacheStress, ConcurrentIdenticalKeysStayConsistent)
{
    // Many threads ask for the same decomposition at once: every
    // answer must be bit-identical, the cache must hold exactly one
    // entry, and hits + misses must equal the number of calls.
    Tensor w = smallMatrix(31);
    core::SeOptions opts;
    opts.vectorThreshold = 0.01;
    const core::SeMatrix ref = core::decomposeMatrix(w, opts);

    runtime::DecompCache cache(16);
    const int threads = 8, per_thread = 25;
    std::atomic<int> mismatches{0};
    std::vector<std::thread> workers;
    workers.reserve(threads);
    for (int t = 0; t < threads; ++t) {
        workers.emplace_back([&] {
            for (int i = 0; i < per_thread; ++i) {
                core::SeMatrix got = cache.getOrCompute(w, opts);
                if (got.ce.size() != ref.ce.size() ||
                    std::memcmp(got.ce.data(), ref.ce.data(),
                                (size_t)ref.ce.size() *
                                    sizeof(float)) != 0 ||
                    std::memcmp(got.basis.data(), ref.basis.data(),
                                (size_t)ref.basis.size() *
                                    sizeof(float)) != 0)
                    mismatches++;
            }
        });
    }
    for (auto &th : workers)
        th.join();

    EXPECT_EQ(mismatches.load(), 0);
    EXPECT_EQ(cache.size(), 1u);
    EXPECT_EQ(cache.hits() + cache.misses(),
              (uint64_t)(threads * per_thread));
    EXPECT_GE(cache.hits(), (uint64_t)(threads * per_thread - threads));
}

TEST(DecompCacheStress, ConcurrentEvictionPressureStaysBounded)
{
    // More live keys than capacity, hammered from several threads:
    // the cache must stay within capacity, never mis-answer, and keep
    // coherent counters.
    const size_t capacity = 3;
    runtime::DecompCache cache(capacity);
    core::SeOptions opts;
    opts.vectorThreshold = 0.01;

    const int distinct = 8;
    std::vector<Tensor> keys;
    std::vector<core::SeMatrix> refs;
    for (int k = 0; k < distinct; ++k) {
        keys.push_back(smallMatrix(100 + (uint64_t)k));
        refs.push_back(core::decomposeMatrix(keys.back(), opts));
    }

    const int threads = 6, per_thread = 30;
    std::atomic<int> mismatches{0};
    std::vector<std::thread> workers;
    workers.reserve(threads);
    for (int t = 0; t < threads; ++t) {
        workers.emplace_back([&, t] {
            Rng rng((uint64_t)t);
            for (int i = 0; i < per_thread; ++i) {
                const int k = (int)rng.integer(0, distinct - 1);
                core::SeMatrix got =
                    cache.getOrCompute(keys[(size_t)k], opts);
                if (std::memcmp(got.ce.data(),
                                refs[(size_t)k].ce.data(),
                                (size_t)got.ce.size() *
                                    sizeof(float)) != 0)
                    mismatches++;
            }
        });
    }
    for (auto &th : workers)
        th.join();

    EXPECT_EQ(mismatches.load(), 0);
    EXPECT_LE(cache.size(), capacity);
    EXPECT_EQ(cache.hits() + cache.misses(),
              (uint64_t)(threads * per_thread));

    cache.clear();
    EXPECT_EQ(cache.size(), 0u);
}

// ------------------------------------------------ ServeEngine races

constexpr int64_t kSrvC = 2, kSrvH = 4, kSrvW = 4;

/** The smallest servable CNN (stress tests care about plumbing). */
std::unique_ptr<nn::Sequential>
makeTinyCnn(uint64_t seed)
{
    Rng rng(seed);
    auto net = std::make_unique<nn::Sequential>();
    net->add<nn::Conv2d>(kSrvC, 4, 3, 1, 1, 1, rng, false);
    net->add<nn::ReLU>();
    net->add<nn::GlobalAvgPool>();
    net->add<nn::Flatten>();
    net->add<nn::Linear>(4, 4, rng, false);
    return net;
}

struct TinyShipped
{
    std::shared_ptr<const std::vector<core::SeLayerRecord>> records;
    core::SeOptions seOpts;
    core::ApplyOptions applyOpts;
};

TinyShipped
shipTiny(uint64_t seed)
{
    TinyShipped s;
    s.seOpts.vectorThreshold = 0.01;
    auto net = makeTinyCnn(seed);
    auto compressed =
        core::compressToRecords(*net, s.seOpts, s.applyOpts);
    s.records = std::make_shared<std::vector<core::SeLayerRecord>>(
        std::move(compressed.records));
    return s;
}

Tensor
tinyInput(uint64_t seed)
{
    Rng rng(seed);
    return randn({kSrvC, kSrvH, kSrvW}, rng, 0.0f, 1.0f);
}

TEST(ServeEngineStress, StopSubmitRaceIsCatchableNotFatal)
{
    // Regression: submit() racing stop()/destruction used to
    // SE_PANIC the whole process. Now every accepted request is
    // answered and every refused one throws EngineStoppedError.
    auto shipped = shipTiny(41);
    serve::ServeOptions opts;
    opts.threads = 2;
    opts.maxBatch = 4;
    serve::ServeEngine engine(
        shipped.records, [] { return makeTinyCnn(41); },
        shipped.seOpts, shipped.applyOpts, opts);

    constexpr int submitters = 4, per_thread = 100;
    std::atomic<int> accepted{0}, refused{0};
    std::vector<std::vector<std::future<Tensor>>> futs(
        (size_t)submitters);
    std::vector<std::thread> threads;
    threads.reserve(submitters);
    for (int t = 0; t < submitters; ++t) {
        threads.emplace_back([&, t] {
            for (int i = 0; i < per_thread; ++i) {
                try {
                    futs[(size_t)t].push_back(
                        engine.submit(tinyInput((uint64_t)i)));
                    accepted++;
                } catch (const serve::EngineStoppedError &) {
                    refused++;
                }
            }
        });
    }
    // Stop mid-flood: some submits land before, some after.
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
    engine.stop();
    for (auto &th : threads)
        th.join();

    EXPECT_EQ(accepted.load() + refused.load(),
              submitters * per_thread);
    // Every accepted request was answered before stop() returned.
    for (auto &vec : futs)
        for (auto &f : vec) {
            ASSERT_EQ(f.wait_for(std::chrono::seconds(0)),
                      std::future_status::ready);
            EXPECT_NO_THROW(f.get());
        }
    EXPECT_EQ(engine.stats().requests, (uint64_t)accepted.load());
}

TEST(ServeEngineStress, QueueCapSaturationShedsOrCompletesNeverHangs)
{
    auto shipped = shipTiny(42);
    serve::ServeOptions opts;
    opts.threads = 2;
    opts.maxBatch = 4;
    opts.queueCap = 8;
    serve::ServeEngine engine(
        shipped.records, [] { return makeTinyCnn(42); },
        shipped.seOpts, shipped.applyOpts, opts);

    constexpr int submitters = 6, per_thread = 100;
    std::atomic<int> accepted{0}, shed{0};
    std::vector<std::vector<std::future<Tensor>>> futs(
        (size_t)submitters);
    std::vector<std::thread> threads;
    threads.reserve(submitters);
    for (int t = 0; t < submitters; ++t) {
        threads.emplace_back([&, t] {
            for (int i = 0; i < per_thread; ++i) {
                try {
                    futs[(size_t)t].push_back(
                        engine.submit(tinyInput((uint64_t)i)));
                    accepted++;
                } catch (const serve::AdmissionError &) {
                    shed++;
                }
            }
        });
    }
    for (auto &th : threads)
        th.join();
    engine.drain();

    // Conservation law: every offered request either completed or
    // was shed — nothing lost, nothing hung.
    EXPECT_EQ(accepted.load() + shed.load(),
              submitters * per_thread);
    for (auto &vec : futs)
        for (auto &f : vec) {
            ASSERT_EQ(f.wait_for(std::chrono::seconds(0)),
                      std::future_status::ready);
            EXPECT_NO_THROW(f.get());
        }
    const auto st = engine.stats();
    EXPECT_EQ(st.requests, (uint64_t)accepted.load());
    EXPECT_EQ(st.shed, (uint64_t)shed.load());
    EXPECT_EQ(st.failed, 0u);
}

TEST(ServeEngineStress, DrainVsSubmitInterleavingNeverLosesRequests)
{
    // Drainers and submitters interleave freely (Full policy, so an
    // un-flushed hold would deadlock a lost drainer).
    auto shipped = shipTiny(43);
    serve::ServeOptions opts;
    opts.threads = 2;
    opts.maxBatch = 8;
    opts.flush = serve::FlushPolicy::Full;
    serve::ServeEngine engine(
        shipped.records, [] { return makeTinyCnn(43); },
        shipped.seOpts, shipped.applyOpts, opts);

    constexpr int submitters = 3, per_thread = 60, drainers = 3;
    std::atomic<bool> done{false};
    std::vector<std::vector<std::future<Tensor>>> futs(
        (size_t)submitters);
    std::vector<std::thread> threads;
    for (int t = 0; t < submitters; ++t) {
        threads.emplace_back([&, t] {
            for (int i = 0; i < per_thread; ++i) {
                futs[(size_t)t].push_back(
                    engine.submit(tinyInput((uint64_t)i)));
                if (i % 16 == 0)
                    std::this_thread::yield();
            }
        });
    }
    for (int d = 0; d < drainers; ++d) {
        threads.emplace_back([&] {
            while (!done.load())
                engine.drain();
        });
    }
    for (int t = 0; t < submitters; ++t)
        threads[(size_t)t].join();
    done.store(true);
    for (size_t t = (size_t)submitters; t < threads.size(); ++t)
        threads[t].join();
    engine.drain();

    for (auto &vec : futs)
        for (auto &f : vec) {
            ASSERT_EQ(f.wait_for(std::chrono::seconds(0)),
                      std::future_status::ready);
            EXPECT_NO_THROW(f.get());
        }
    EXPECT_EQ(engine.stats().requests,
              (uint64_t)(submitters * per_thread));
}

// --------------------------------------- persistent cache sharing

TEST(DecompCacheStress, SharedSpillDirAcrossInstancesStaysCoherent)
{
    // Two cache instances sharing one spill directory model two
    // processes pointed at the same SE_CACHE_DIR: interleaved
    // writes, recovery scans and memory evictions from several
    // threads must never produce a torn read — every answer is
    // bit-identical to the direct decomposition.
    namespace fs = std::filesystem;
    const std::string dir =
        (fs::temp_directory_path() / "se_stress_shared_spill")
            .string();
    fs::remove_all(dir);

    core::SeOptions opts;
    opts.vectorThreshold = 0.01;
    const int distinct = 6;
    std::vector<Tensor> keys;
    std::vector<core::SeMatrix> refs;
    for (int k = 0; k < distinct; ++k) {
        keys.push_back(smallMatrix(300 + (uint64_t)k));
        refs.push_back(core::decomposeMatrix(keys.back(), opts));
    }

    runtime::DecompCache a(runtime::DecompCacheOptions{2, dir});
    runtime::DecompCache b(runtime::DecompCacheOptions{2, dir});

    const int threads_per = 3, per_thread = 40;
    std::atomic<int> mismatches{0};
    std::vector<std::thread> workers;
    for (int inst = 0; inst < 2; ++inst) {
        runtime::DecompCache &cache = inst == 0 ? a : b;
        for (int t = 0; t < threads_per; ++t) {
            workers.emplace_back([&, inst, t] {
                for (int i = 0; i < per_thread; ++i) {
                    const int k =
                        (i + t + inst * threads_per) % distinct;
                    core::SeMatrix got = cache.getOrCompute(
                        keys[(size_t)k], opts);
                    const core::SeMatrix &ref = refs[(size_t)k];
                    if (got.ce.size() != ref.ce.size() ||
                        std::memcmp(got.ce.data(), ref.ce.data(),
                                    (size_t)ref.ce.size() *
                                        sizeof(float)) != 0 ||
                        std::memcmp(got.basis.data(),
                                    ref.basis.data(),
                                    (size_t)ref.basis.size() *
                                        sizeof(float)) != 0)
                        mismatches++;
                    if (i % 13 == 0)
                        cache.recoverScan();  // concurrent sweeps
                    if (i % 17 == 0)
                        cache.clear();  // evict the memory tier
                }
            });
        }
    }
    for (auto &th : workers)
        th.join();

    EXPECT_EQ(mismatches.load(), 0);
    // Every distinct key ended up durable and valid on disk.
    EXPECT_EQ(a.recoverScan(), (size_t)distinct);
    EXPECT_EQ(b.recoverScan(), (size_t)distinct);
    fs::remove_all(dir);
}

// ------------------------------------------------ reload under fire

TEST(ServeFrontStress, FiftyReloadFlipsUnderTrafficDropNothing)
{
    // The hot-reload wall: two bundles flip back and forth 50 times
    // under continuous traffic. Zero requests may drop, and every
    // response must be bit-identical to one of the two generations'
    // reference nets (a response can never blend generations).
    auto refA = makeTinyCnn(46);
    auto refB = makeTinyCnn(47);
    core::SeOptions se_opts;
    se_opts.vectorThreshold = 0.01;
    core::ApplyOptions apply_opts;
    auto compA = core::compressToRecords(*refA, se_opts, apply_opts);
    auto compB = core::compressToRecords(*refB, se_opts, apply_opts);
    auto recsA =
        std::make_shared<std::vector<core::SeLayerRecord>>(
            compA.records);
    auto recsB =
        std::make_shared<std::vector<core::SeLayerRecord>>(
            compB.records);

    serve::ModelRegistry reg;
    reg.add("m", serve::ModelEntry{recsA,
                                   [] { return makeTinyCnn(46); },
                                   se_opts, apply_opts, nullptr});
    serve::ServeOptions opts;
    opts.threads = 2;
    opts.maxBatch = 4;
    serve::ServeFront front(reg, opts);

    Tensor x = tinyInput(9);
    Tensor batched = x.reshaped({1, x.dim(0), x.dim(1), x.dim(2)});
    Tensor wantA = refA->forward(batched, false);
    Tensor wantB = refB->forward(batched, false);

    std::atomic<bool> done{false};
    std::atomic<int> answered{0}, dropped{0}, blended{0};
    constexpr int traffic_threads = 2;
    std::vector<std::thread> traffic;
    for (int t = 0; t < traffic_threads; ++t)
        traffic.emplace_back([&] {
            while (!done.load()) {
                try {
                    Tensor y = front.submit("m", x).get();
                    const size_t bytes =
                        (size_t)y.size() * sizeof(float);
                    if (std::memcmp(y.data(), wantA.data(), bytes) &&
                        std::memcmp(y.data(), wantB.data(), bytes))
                        ++blended;
                    ++answered;
                } catch (const serve::EngineStoppedError &) {
                    ++dropped;  // a swap escape = a dropped request
                }
            }
        });

    constexpr int flips = 50;
    for (int flip = 0; flip < flips; ++flip) {
        const bool toB = flip % 2 == 0;
        front.reloadModel(
            "m",
            serve::ModelEntry{toB ? recsB : recsA,
                              [toB] {
                                  return makeTinyCnn(toB ? 47 : 46);
                              },
                              se_opts, apply_opts, nullptr});
        EXPECT_EQ(front.generation("m"), (uint64_t)(flip + 2));
    }
    done.store(true);
    for (auto &t : traffic)
        t.join();
    front.drain();

    EXPECT_EQ(dropped.load(), 0);
    EXPECT_EQ(blended.load(), 0);
    EXPECT_GT(answered.load(), 0);
    EXPECT_EQ(front.generation("m"), (uint64_t)(flips + 1));
    EXPECT_EQ(front.health("m"), serve::ModelHealth::Healthy);
    // Merged stats saw every answered request across 51 generations.
    EXPECT_EQ(front.stats("m").requests, (uint64_t)answered.load());
    front.stop();
}

TEST(ServeEngineStress, InjectedBatchFaultsUnderLoadNeverHang)
{
    // A "replica keeps dying" drill: serve_batch_exec fires on a
    // deterministic schedule under concurrent traffic. Every request
    // must resolve (answered or failed with the injected fault), the
    // engine must keep serving afterwards, and nothing may hang.
    failpoint::disarmAll();
    auto shipped = shipTiny(48);
    serve::ServeOptions opts;
    opts.threads = 2;
    opts.maxBatch = 4;
    serve::ServeEngine engine(
        shipped.records, [] { return makeTinyCnn(48); },
        shipped.seOpts, shipped.applyOpts, opts);

    constexpr int submitters = 3, per_thread = 40;
    std::vector<std::vector<std::future<Tensor>>> futs(
        (size_t)submitters);
    {
        failpoint::ScopedArm arm("serve_batch_exec", "1in5");
        std::vector<std::thread> threads;
        for (int t = 0; t < submitters; ++t)
            threads.emplace_back([&, t] {
                for (int i = 0; i < per_thread; ++i)
                    futs[(size_t)t].push_back(
                        engine.submit(tinyInput((uint64_t)i)));
            });
        for (auto &t : threads)
            t.join();
        engine.drain();
    }

    int ok = 0, injected = 0;
    for (auto &vec : futs)
        for (auto &f : vec) {
            ASSERT_EQ(f.wait_for(std::chrono::seconds(0)),
                      std::future_status::ready);
            try {
                f.get();
                ++ok;
            } catch (const failpoint::InjectedFault &) {
                ++injected;
            }
        }
    EXPECT_EQ(ok + injected, submitters * per_thread);
    EXPECT_GT(injected, 0);
    EXPECT_EQ(engine.stats().failed, (uint64_t)injected);

    // Disarmed again: the engine serves on as if nothing happened.
    auto after = engine.submit(tinyInput(5));
    engine.drain();
    EXPECT_NO_THROW(after.get());
}

TEST(ServeEngineStress, PipelinedStopDrainRaceConservesEveryRequest)
{
    // The stage-decoupled loop adds two hand-off queues (formed_,
    // done_) and a completer thread between submit() and the
    // promise. Hammer that machinery: submitters race drain() and
    // then stop() while pipeline_stage_delay stretches the admit
    // stage so requests pile up in every queue. Conservation law:
    // every accepted future resolves (never hangs), every refused
    // submit throws EngineStoppedError, and the books balance.
    failpoint::disarmAll();
    auto shipped = shipTiny(52);
    serve::ServeOptions opts;
    opts.pipeline = true;
    opts.pipelineDepth = 3;
    opts.threads = 2;
    opts.maxBatch = 4;
    serve::ServeEngine engine(
        shipped.records, [] { return makeTinyCnn(52); },
        shipped.seOpts, shipped.applyOpts, opts);

    constexpr int submitters = 4, per_thread = 60;
    std::atomic<int> accepted{0}, refused{0};
    std::vector<std::vector<std::future<Tensor>>> futs(
        (size_t)submitters);
    {
        failpoint::ScopedArm arm("pipeline_stage_delay", "1in3");
        std::vector<std::thread> threads;
        threads.reserve(submitters + 1);
        for (int t = 0; t < submitters; ++t)
            threads.emplace_back([&, t] {
                for (int i = 0; i < per_thread; ++i) {
                    try {
                        futs[(size_t)t].push_back(
                            engine.submit(tinyInput((uint64_t)i)));
                        accepted++;
                    } catch (const serve::EngineStoppedError &) {
                        refused++;
                    }
                }
            });
        // One thread races drain() against the in-flight flood.
        threads.emplace_back([&] { engine.drain(); });
        std::this_thread::sleep_for(std::chrono::milliseconds(2));
        engine.stop();
        for (auto &th : threads)
            th.join();
    }

    EXPECT_EQ(accepted.load() + refused.load(),
              submitters * per_thread);
    for (auto &vec : futs)
        for (auto &f : vec) {
            ASSERT_EQ(f.wait_for(std::chrono::seconds(0)),
                      std::future_status::ready);
            EXPECT_NO_THROW(f.get());
        }
    auto st = engine.stats();
    EXPECT_EQ(st.requests, (uint64_t)accepted.load());
    EXPECT_EQ(st.failed, 0u);
    EXPECT_LE(st.pipelineOccupancy, 1.0);

    // Stopped means stopped, even with the extra stages.
    EXPECT_THROW(engine.submit(tinyInput(9)),
                 serve::EngineStoppedError);
}

} // namespace
} // namespace se
