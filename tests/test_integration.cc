/**
 * @file
 * Integration tests across modules: train a small model on synthetic
 * data, compress it with SmartExchange, re-train, and check that the
 * whole paper pipeline holds together (accuracy recovers, structure
 * survives, compressed workloads drive the accelerator models).
 */

#include <gtest/gtest.h>

#include "accel/annotate.hh"
#include "accel/baselines.hh"
#include "accel/smartexchange_accel.hh"
#include "compress/baselines.hh"
#include "core/trainer.hh"
#include "models/zoo.hh"
#include "quant/quant.hh"

namespace se {
namespace {

data::ClassificationTask
smallTask()
{
    data::ClassSetConfig cfg;
    cfg.numClasses = 4;
    cfg.height = cfg.width = 8;
    cfg.batchSize = 8;
    cfg.trainBatches = 10;
    cfg.testBatches = 4;
    cfg.noise = 0.35f;
    cfg.seed = 42;
    return data::makeClassification(cfg);
}

models::SimConfig
smallModelCfg()
{
    models::SimConfig cfg;
    cfg.numClasses = 4;
    cfg.inHeight = cfg.inWidth = 8;
    cfg.baseWidth = 6;
    return cfg;
}

TEST(Pipeline, TrainingReachesUsableAccuracy)
{
    auto task = smallTask();
    auto net = models::buildSim(models::ModelId::VGG11, smallModelCfg());
    core::TrainConfig tc;
    tc.epochs = 8;
    tc.lr = 0.05f;
    const double acc = core::trainClassifier(*net, task, tc);
    EXPECT_GT(acc, 0.7) << "synthetic task should be learnable";
}

TEST(Pipeline, SmartExchangeWithRetrainingRecoversAccuracy)
{
    auto task = smallTask();
    auto net = models::buildSim(models::ModelId::VGG11, smallModelCfg());
    core::TrainConfig tc;
    tc.epochs = 8;
    tc.lr = 0.05f;
    core::trainClassifier(*net, task, tc);

    core::SeOptions se_opts;
    se_opts.vectorThreshold = 0.02;
    core::SeRetrainConfig rc;
    rc.rounds = 3;
    auto res = core::retrainWithSmartExchange(
        *net, task, se_opts, core::ApplyOptions{}, rc);

    EXPECT_GT(res.accBaseline, 0.7);
    // Post-processing may drop accuracy; re-training must recover most
    // of it (paper: <= 2% loss with re-training; we allow more slack
    // at this scale).
    EXPECT_GE(res.accRetrained, res.accBaseline - 0.15);
    EXPECT_GT(res.report.compressionRate(), 5.0);
}

TEST(Pipeline, SeStructureSurvivesRetraining)
{
    auto task = smallTask();
    auto net = models::buildSim(models::ModelId::VGG11, smallModelCfg());
    core::TrainConfig tc;
    tc.epochs = 4;
    core::trainClassifier(*net, task, tc);

    core::SeOptions se_opts;
    core::SeRetrainConfig rc;
    rc.rounds = 2;
    core::retrainWithSmartExchange(*net, task, se_opts,
                                   core::ApplyOptions{}, rc);

    // After the loop ends with an SE application, every decomposed
    // conv weight equals Ce*B with quantized Ce; spot-check by
    // re-decomposing: the reconstruction must be a near-fixed-point.
    std::vector<nn::Conv2d *> convs;
    net->visit([&](nn::Layer &l) {
        if (auto *c = dynamic_cast<nn::Conv2d *>(&l))
            if (c->kernelSize() > 1 &&
                c->weightTensor().size() >= 16)
                convs.push_back(c);
    });
    ASSERT_FALSE(convs.empty());
    for (auto *c : convs) {
        Tensor before = c->weightTensor();
        auto pieces = core::decomposeConvWeight(
            c->weightTensor(), se_opts, core::ApplyOptions{});
        double err = 0.0, norm = 0.0;
        size_t pi = 0;
        (void)pi;
        // Reconstruct piece-by-piece and compare against the stored
        // weights (already an SE fixed point).
        double total_err = 0.0;
        for (auto &p : pieces)
            total_err += p.reconRelError;
        err = total_err / (double)pieces.size();
        norm = 1.0;
        EXPECT_LT(err / norm, 0.25);
    }
}

TEST(Pipeline, SegmentationTrainsAndCompresses)
{
    data::SegSetConfig scfg;
    scfg.height = scfg.width = 16;
    scfg.batchSize = 4;
    scfg.trainBatches = 6;
    scfg.testBatches = 2;
    auto task = data::makeSegmentation(scfg);

    models::SimConfig mcfg;
    mcfg.numClasses = scfg.numClasses;
    mcfg.inHeight = mcfg.inWidth = 16;
    mcfg.baseWidth = 6;
    auto net =
        models::buildSim(models::ModelId::DeepLabV3Plus, mcfg);

    core::TrainConfig tc;
    tc.epochs = 5;
    tc.lr = 0.1f;
    const double miou = core::trainSegmenter(*net, task, tc);
    EXPECT_GT(miou, 0.25);

    auto report = core::applySmartExchange(*net, core::SeOptions{},
                                           core::ApplyOptions{});
    EXPECT_GT(report.compressionRate(), 4.0);
    const double miou_after = core::evaluateSegmenter(*net, task.test);
    EXPECT_GT(miou_after, miou - 0.25);
}

TEST(Pipeline, MeasuredActivationStatsFeedAccelerator)
{
    // Fig. 4 -> accelerator pipeline: measure Booth statistics on real
    // activations of a trained model and drive the simulator with
    // them.
    auto task = smallTask();
    auto net = models::buildSim(models::ModelId::VGG19, smallModelCfg());
    core::TrainConfig tc;
    tc.epochs = 4;
    core::trainClassifier(*net, task, tc);

    Tensor acts = net->forward(task.test.batches[0], false);
    auto stats = quant::measureBitSparsity(acts, 8);
    EXPECT_GT(stats.plainBitSparsity, 0.3);

    auto w = accel::annotatedWorkload(models::ModelId::VGG19);
    for (auto &l : w.layers)
        l.actAvgBoothDigits = stats.avgBoothDigits;
    accel::SmartExchangeAccel se;
    accel::DianNao dn;
    EXPECT_LT(se.runNetwork(w, false).totalEnergyPj(),
              dn.runNetwork(w, false).totalEnergyPj());
}

TEST(Pipeline, SeBeatsIsolatedBaselineTechniques)
{
    // Fig. 8 in miniature: at comparable compression, SmartExchange's
    // accuracy is at least close to pruning-alone, and its size at
    // least close to quantization-alone.
    auto task = smallTask();

    auto train_one = [&](models::ModelId id) {
        auto n = models::buildSim(id, smallModelCfg());
        core::TrainConfig tc;
        tc.epochs = 8;
        tc.lr = 0.05f;
        core::trainClassifier(*n, task, tc);
        return n;
    };

    auto se_net = train_one(models::ModelId::VGG11);
    core::SeOptions se_opts;
    se_opts.vectorThreshold = 0.02;
    core::SeRetrainConfig rc;
    rc.rounds = 3;
    auto se_res = core::retrainWithSmartExchange(
        *se_net, task, se_opts, core::ApplyOptions{}, rc);

    auto prune_net = train_one(models::ModelId::VGG11);
    auto prune_rep = compress::pruneFiltersL1(*prune_net, 0.5);
    const double prune_acc = core::evaluate(*prune_net, task.test);

    auto quant_net = train_one(models::ModelId::VGG11);
    auto quant_rep = compress::quantizeKBit(*quant_net, 4);
    const double quant_acc = core::evaluate(*quant_net, task.test);

    // SE must compress much harder than structured pruning alone...
    EXPECT_GT(se_res.report.compressionRate(),
              prune_rep.compressionRate());
    // ...and hold accuracy within a reasonable band of both.
    EXPECT_GE(se_res.accRetrained, prune_acc - 0.2);
    EXPECT_GE(se_res.accRetrained, quant_acc - 0.2);
}

} // namespace
} // namespace se
