/**
 * @file
 * Unit tests for the base utilities: bit helpers, RNG determinism,
 * table rendering.
 */

#include <gtest/gtest.h>

#include <sstream>

#include "base/bitutils.hh"
#include "base/random.hh"
#include "base/table.hh"

namespace se {
namespace {

TEST(BitUtils, Popcount)
{
    EXPECT_EQ(popcount(0), 0);
    EXPECT_EQ(popcount(1), 1);
    EXPECT_EQ(popcount(0xFF), 8);
    EXPECT_EQ(popcount(0xF0F0F0F0F0F0F0F0ULL), 32);
}

TEST(BitUtils, IsPow2)
{
    EXPECT_FALSE(isPow2(0));
    EXPECT_TRUE(isPow2(1));
    EXPECT_TRUE(isPow2(2));
    EXPECT_FALSE(isPow2(3));
    EXPECT_TRUE(isPow2(1ULL << 40));
    EXPECT_FALSE(isPow2((1ULL << 40) + 1));
}

TEST(BitUtils, CeilLog2)
{
    EXPECT_EQ(ceilLog2(1), 0);
    EXPECT_EQ(ceilLog2(2), 1);
    EXPECT_EQ(ceilLog2(3), 2);
    EXPECT_EQ(ceilLog2(1024), 10);
    EXPECT_EQ(ceilLog2(1025), 11);
}

TEST(BitUtils, CeilDiv)
{
    EXPECT_EQ(ceilDiv(10, 5), 2);
    EXPECT_EQ(ceilDiv(11, 5), 3);
    EXPECT_EQ(ceilDiv(1, 8), 1);
}

TEST(BitUtils, NearestPow2ExpExactPowers)
{
    EXPECT_EQ(nearestPow2Exp(1.0), 0);
    EXPECT_EQ(nearestPow2Exp(2.0), 1);
    EXPECT_EQ(nearestPow2Exp(0.5), -1);
    EXPECT_EQ(nearestPow2Exp(0.25), -2);
    EXPECT_EQ(nearestPow2Exp(-4.0), 2);
}

TEST(BitUtils, NearestPow2ExpLinearDistance)
{
    // 3.0 is at distance 1 from both 2 and 4; log rounding picks one,
    // and either is a valid nearest neighbour. 2.9 is closer to 2.
    const int e3 = nearestPow2Exp(3.0);
    EXPECT_TRUE(e3 == 1 || e3 == 2);
    EXPECT_EQ(nearestPow2Exp(2.9), 1);
    EXPECT_EQ(nearestPow2Exp(3.1), 2);
    // 1.4 closer to 1; 1.6 closer to 2.
    EXPECT_EQ(nearestPow2Exp(1.4), 0);
    EXPECT_EQ(nearestPow2Exp(1.6), 1);
}

TEST(Rng, Deterministic)
{
    Rng a(42), b(42);
    for (int i = 0; i < 100; ++i)
        EXPECT_EQ(a.uniform(), b.uniform());
}

TEST(Rng, UniformRange)
{
    Rng rng(7);
    for (int i = 0; i < 1000; ++i) {
        const float v = rng.uniform(-2.0f, 3.0f);
        EXPECT_GE(v, -2.0f);
        EXPECT_LT(v, 3.0f);
    }
}

TEST(Rng, IntegerRangeInclusive)
{
    Rng rng(7);
    bool saw_lo = false, saw_hi = false;
    for (int i = 0; i < 2000; ++i) {
        const int64_t v = rng.integer(0, 3);
        EXPECT_GE(v, 0);
        EXPECT_LE(v, 3);
        saw_lo |= v == 0;
        saw_hi |= v == 3;
    }
    EXPECT_TRUE(saw_lo);
    EXPECT_TRUE(saw_hi);
}

TEST(Rng, GaussianMoments)
{
    Rng rng(11);
    double sum = 0.0, sum2 = 0.0;
    const int n = 20000;
    for (int i = 0; i < n; ++i) {
        const double v = rng.gaussian(1.0f, 2.0f);
        sum += v;
        sum2 += v * v;
    }
    const double mean = sum / n;
    const double var = sum2 / n - mean * mean;
    EXPECT_NEAR(mean, 1.0, 0.1);
    EXPECT_NEAR(var, 4.0, 0.3);
}

TEST(Table, RendersAlignedColumns)
{
    Table t({"model", "value"});
    t.row().cell("VGG11").cell(1.5, 1);
    t.row().cell("x").cell((int64_t)42);
    std::ostringstream os;
    t.print(os);
    const std::string out = os.str();
    EXPECT_NE(out.find("model"), std::string::npos);
    EXPECT_NE(out.find("VGG11"), std::string::npos);
    EXPECT_NE(out.find("1.5"), std::string::npos);
    EXPECT_NE(out.find("42"), std::string::npos);
}

} // namespace
} // namespace se
